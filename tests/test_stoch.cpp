#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "lp/graph_lp.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "lp/simplex.hpp"
#include "schedgen/schedgen.hpp"
#include "stoch/distribution.hpp"
#include "stoch/mc.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace llamp {
namespace {

loggops::Params test_params() {
  loggops::Params p;
  p.L = 3'000.0;
  p.o = 1'200.0;
  p.G = 0.05;
  p.S = 256 * 1024;
  return p;
}

graph::Graph small_app_graph() {
  return schedgen::build_graph(apps::make_app_trace("lulesh", 8, 0.05));
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(StochDistribution, ParseRoundTrips) {
  for (const char* spec :
       {"base", "const:5", "normal:3000,150", "relnormal:0.05",
        "uniform:100,200"}) {
    const auto d = stoch::parse_distribution(spec);
    EXPECT_EQ(stoch::parse_distribution(d.to_string()).kind, d.kind) << spec;
  }
}

// The spec string is echoed into JSONL results and re-parseable as a
// request field, so to_string must reproduce the parameters *bitwise*
// however many digits they carry (%g-style truncation would silently
// change the distribution on the round trip).
TEST(StochDistribution, ToStringIsExactForAwkwardParameters) {
  const auto d = stoch::Distribution::normal(3000.123456789012, 0.1);
  const auto back = stoch::parse_distribution(d.to_string());
  EXPECT_EQ(back.a, d.a);
  EXPECT_EQ(back.b, d.b);

  const auto rel = stoch::Distribution::rel_normal(1.0 / 3.0);
  EXPECT_EQ(stoch::parse_distribution(rel.to_string()).a, rel.a);
  // Short spellings stay short.
  EXPECT_EQ(stoch::Distribution::rel_normal(0.05).to_string(),
            "relnormal:0.05");
}

TEST(StochDistribution, ParseRejectsGarbage) {
  for (const char* spec :
       {"", "gaussian:1,2", "normal:1", "normal:1,2,3", "const:",
        "const:abc", "uniform:5,1", "uniform:-1,2", "normal:5,-1",
        "relnormal:-0.1", "base:1"}) {
    EXPECT_THROW(stoch::parse_distribution(spec), UsageError) << spec;
  }
}

TEST(StochDistribution, DegenerateKindsReturnExactValues) {
  Rng rng(1);
  const auto base = stoch::Distribution::base();
  EXPECT_TRUE(base.degenerate());
  EXPECT_EQ(base.sample(rng, 3'000.0), 3'000.0);

  const auto cst = stoch::Distribution::constant(123.25);
  EXPECT_TRUE(cst.degenerate());
  EXPECT_EQ(cst.sample(rng, 99.0), 123.25);

  // Zero-variance normals must hand back the mean bitwise, not merely
  // approximately: the degenerate-MC reproduction contract depends on it.
  const auto n0 = stoch::Distribution::normal(3'000.0, 0.0);
  EXPECT_TRUE(n0.degenerate());
  EXPECT_EQ(n0.sample(rng, 99.0), 3'000.0);

  const auto r0 = stoch::Distribution::rel_normal(0.0);
  EXPECT_TRUE(r0.degenerate());
  EXPECT_EQ(r0.sample(rng, 3'000.0), 3'000.0);
}

TEST(StochDistribution, SamplingMomentsAndTruncation) {
  Rng rng(7);
  const auto d = stoch::Distribution::rel_normal(0.1);
  EXPECT_FALSE(d.degenerate());
  double sum = 0.0;
  int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng, 1'000.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1'000.0, 5.0);

  // A distribution hugging zero gets visibly truncated: no negative draws.
  const auto tight = stoch::Distribution::normal(1.0, 10.0);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GE(tight.sample(rng, 0.0), 0.0);
  }
}

TEST(StochDistribution, EdgeNoiseFollowsInjectorConvention) {
  stoch::EdgeNoise none;
  Rng rng(3);
  EXPECT_TRUE(none.degenerate());
  EXPECT_EQ(none.factor(rng), 1.0);

  stoch::EdgeNoise noisy{0.01, 0.002};
  noisy.validate();
  for (int i = 0; i < 1'000; ++i) {
    // Folded normal on top of the bias: slowdown-only, like the emulator.
    EXPECT_GE(noisy.factor(rng), 1.002);
  }

  EXPECT_THROW((stoch::EdgeNoise{-0.1, 0.0}).validate(), UsageError);
  EXPECT_THROW((stoch::EdgeNoise{0.0, -1.0}).validate(), UsageError);
}

TEST(StochDistribution, SampleSeedsDecorrelated) {
  // Consecutive indices (and consecutive seeds) must land in unrelated
  // generator states: first draws all distinct.
  std::vector<double> draws;
  for (std::uint64_t i = 0; i < 64; ++i) {
    Rng rng(stoch::sample_seed(42, i));
    draws.push_back(rng.uniform());
  }
  for (std::size_t a = 0; a < draws.size(); ++a) {
    for (std::size_t b = a + 1; b < draws.size(); ++b) {
      EXPECT_NE(draws[a], draws[b]);
    }
  }
  EXPECT_NE(stoch::sample_seed(42, 0), stoch::sample_seed(43, 0));
}

// ---------------------------------------------------------------------------
// The lp perturbation hook
// ---------------------------------------------------------------------------

TEST(PerturbedSpace, AllOnesFactorsAreBitwiseTransparent) {
  const auto g = small_app_graph();
  const auto p = test_params();
  const auto base = std::make_shared<lp::LatencyParamSpace>(p);
  const auto perturbed = std::make_shared<lp::PerturbedParamSpace>(
      base, std::vector<double>(g.num_edges(), 1.0));

  lp::ParametricSolver plain(g, base);
  lp::ParametricSolver hooked(g, perturbed);
  for (const double L : {0.0, 1'500.0, 3'000.0, 50'000.0}) {
    const auto a = plain.solve(0, L);
    const auto b = hooked.solve(0, L);
    EXPECT_EQ(a.value, b.value) << "L=" << L;
    EXPECT_EQ(a.gradient[0], b.gradient[0]) << "L=" << L;
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
  }
}

TEST(PerturbedSpace, UniformSlowdownRaisesRuntime) {
  const auto g = small_app_graph();
  const auto p = test_params();
  const auto base = std::make_shared<lp::LatencyParamSpace>(p);
  const auto slow = std::make_shared<lp::PerturbedParamSpace>(
      base, std::vector<double>(g.num_edges(), 1.25));
  lp::ParametricSolver plain(g, base);
  lp::ParametricSolver hooked(g, slow);
  EXPECT_GT(hooked.solve(0, p.L).value, plain.solve(0, p.L).value);
}

TEST(PerturbedSpace, AgreesWithSimplexUnderRandomFactors) {
  // The perturbed space is still an Algorithm-1 LP; the explicit simplex
  // path must agree with the parametric solver on it.
  testing::RandomProgramConfig cfg;
  cfg.seed = 77;
  cfg.nranks = 4;
  cfg.steps = 30;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const auto p = test_params();

  Rng rng(5);
  std::vector<double> factors(g.num_edges());
  for (double& f : factors) f = rng.uniform(0.8, 1.3);

  const auto space = std::make_shared<lp::PerturbedParamSpace>(
      std::make_shared<lp::LatencyParamSpace>(p), factors);
  auto glp = lp::build_graph_lp(g, *space);
  const auto s = lp::SimplexSolver{}.solve(glp.model);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);

  lp::ParametricSolver solver(g, space);
  const auto sol = solver.solve(0, p.L);
  EXPECT_NEAR(s.objective, sol.value, 1e-6 * (1.0 + sol.value));
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(glp.param_vars[0])],
              sol.gradient[0], 1e-6);
}

TEST(PerturbedSpace, RejectsBadFactors) {
  const auto base = std::make_shared<lp::LatencyParamSpace>(test_params());
  EXPECT_THROW(lp::PerturbedParamSpace(base, {1.0, -0.5}), LpError);
  EXPECT_THROW(
      lp::PerturbedParamSpace(
          base, {1.0, std::numeric_limits<double>::infinity()}),
      LpError);
  EXPECT_THROW(lp::PerturbedParamSpace(nullptr, {}), LpError);

  // Factor-count mismatch surfaces at lowering time.
  const auto g = small_app_graph();
  const auto wrong = std::make_shared<lp::PerturbedParamSpace>(
      base, std::vector<double>(3, 1.0));
  EXPECT_THROW(lp::ParametricSolver(g, wrong), LpError);
}

// ---------------------------------------------------------------------------
// The Monte Carlo engine
// ---------------------------------------------------------------------------

stoch::McSpec degenerate_spec() {
  stoch::McSpec spec;
  spec.samples = 1;
  spec.delta_Ls = {0.0, 25'000.0, 50'000.0};
  spec.band_percents = {1.0, 2.0, 5.0};
  return spec;
}

TEST(StochMc, DegenerateRunReproducesAnalyzerBitwise) {
  // The acceptance criterion of the subsystem: N = 1 with zero-variance
  // distributions is the deterministic analysis, bit for bit.
  const auto g = small_app_graph();
  const auto p = test_params();
  const auto spec = degenerate_spec();
  const auto res = stoch::run_mc(g, p, spec);

  core::LatencyAnalyzer an(g, p);
  const auto sweep = an.sweep(spec.delta_Ls);
  ASSERT_EQ(res.runtime.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(res.runtime[i].count(), 1u);
    EXPECT_EQ(res.runtime[i].mean(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].min(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].max(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].q05(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].median(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].q95(), sweep[i].runtime);
    EXPECT_EQ(res.runtime[i].stddev(), 0.0);
  }
  EXPECT_EQ(res.lambda_L.mean(), an.lambda_L());
  EXPECT_EQ(res.rho_L.mean(), an.rho_L());
  ASSERT_EQ(res.bands.size(), spec.band_percents.size());
  for (std::size_t b = 0; b < res.bands.size(); ++b) {
    const double det = an.tolerance_delta(spec.band_percents[b]);
    if (std::isfinite(det)) {
      EXPECT_EQ(res.bands[b].tolerance_delta.mean(), det);
    } else {
      EXPECT_EQ(res.bands[b].tolerance_delta.unbounded(), 1u);
      EXPECT_EQ(res.bands[b].tolerance_delta.count(), 0u);
    }
  }
}

stoch::McSpec noisy_spec() {
  stoch::McSpec spec;
  spec.samples = 96;
  spec.seed = 11;
  spec.L = stoch::Distribution::rel_normal(0.05);
  spec.o = stoch::Distribution::rel_normal(0.02);
  spec.noise = {0.003, 0.0};
  spec.delta_Ls = {0.0, 20'000.0};
  spec.band_percents = {1.0, 5.0};
  return spec;
}

void expect_summaries_equal(const stoch::Summary& a, const stoch::Summary& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.unbounded(), b.unbounded());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.q05(), b.q05());
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.q95(), b.q95());
}

TEST(StochMc, ThreadCountNeverChangesTheResult) {
  const auto g = small_app_graph();
  const auto p = test_params();
  auto spec = noisy_spec();
  spec.threads = 1;
  const auto serial = stoch::run_mc(g, p, spec);
  spec.threads = 8;
  const auto parallel = stoch::run_mc(g, p, spec);

  ASSERT_EQ(serial.runtime.size(), parallel.runtime.size());
  for (std::size_t i = 0; i < serial.runtime.size(); ++i) {
    expect_summaries_equal(serial.runtime[i], parallel.runtime[i]);
  }
  expect_summaries_equal(serial.lambda_L, parallel.lambda_L);
  expect_summaries_equal(serial.rho_L, parallel.rho_L);
  for (std::size_t b = 0; b < serial.bands.size(); ++b) {
    expect_summaries_equal(serial.bands[b].tolerance_delta,
                           parallel.bands[b].tolerance_delta);
  }
}

TEST(StochMc, BatchKnobNeverChangesTheResult) {
  // spec.batch is a performance knob, never a semantics knob: an L-only
  // run takes the lane-batched fast path when it is on and the per-sample
  // scalar fast path when it is off, and every summary must agree bitwise
  // — at several thread counts, and at a sample count (43) that exercises
  // full groups of lp::kBatchWidth plus a ragged tail of sub-blocks.
  const auto g = small_app_graph();
  const auto p = test_params();
  stoch::McSpec spec;
  spec.samples = 43;
  spec.seed = 11;
  spec.L = stoch::Distribution::rel_normal(0.05);
  spec.delta_Ls = {0.0, 20'000.0};
  spec.band_percents = {1.0, 5.0};

  spec.batch = false;
  const auto scalar = stoch::run_mc(g, p, spec);
  EXPECT_FALSE(scalar.batched);
  EXPECT_EQ(scalar.batch_width, static_cast<int>(lp::kBatchWidth));

  for (const int threads : {1, 8}) {
    spec.batch = true;
    spec.threads = threads;
    const auto batched = stoch::run_mc(g, p, spec);
    EXPECT_TRUE(batched.batched);
    EXPECT_EQ(batched.batch_width, static_cast<int>(lp::kBatchWidth));
    ASSERT_EQ(batched.runtime.size(), scalar.runtime.size());
    for (std::size_t i = 0; i < scalar.runtime.size(); ++i) {
      expect_summaries_equal(batched.runtime[i], scalar.runtime[i]);
    }
    expect_summaries_equal(batched.lambda_L, scalar.lambda_L);
    expect_summaries_equal(batched.rho_L, scalar.rho_L);
    ASSERT_EQ(batched.bands.size(), scalar.bands.size());
    for (std::size_t b = 0; b < scalar.bands.size(); ++b) {
      expect_summaries_equal(batched.bands[b].tolerance_delta,
                             scalar.bands[b].tolerance_delta);
    }
  }
}

TEST(StochMc, GeneralPathIgnoresTheBatchKnob) {
  // Per-edge noise forces a fresh perturbed lowering per sample — there is
  // no shared operating point to batch over, so the knob is ignored and
  // the result records that no batching happened.
  const auto g = small_app_graph();
  const auto p = test_params();
  auto spec = noisy_spec();
  spec.samples = 8;
  spec.batch = true;
  const auto res = stoch::run_mc(g, p, spec);
  EXPECT_FALSE(res.batched);
  EXPECT_EQ(res.batch_width, static_cast<int>(lp::kBatchWidth));
}

TEST(StochMc, SeedSelectsTheNoise) {
  const auto g = small_app_graph();
  const auto p = test_params();
  auto spec = noisy_spec();
  spec.samples = 24;
  const auto a = stoch::run_mc(g, p, spec);
  const auto b = stoch::run_mc(g, p, spec);
  EXPECT_EQ(a.runtime[0].mean(), b.runtime[0].mean());

  spec.seed = 12;
  const auto c = stoch::run_mc(g, p, spec);
  EXPECT_NE(a.runtime[0].mean(), c.runtime[0].mean());
}

TEST(StochMc, NoisySpreadBracketsTheDeterministicValue) {
  const auto g = small_app_graph();
  const auto p = test_params();
  auto spec = noisy_spec();
  spec.samples = 200;
  const auto res = stoch::run_mc(g, p, spec);
  core::LatencyAnalyzer an(g, p);

  const double det = an.base_runtime();
  EXPECT_GT(res.runtime[0].stddev(), 0.0);
  EXPECT_LT(res.runtime[0].q05(), res.runtime[0].median());
  EXPECT_LT(res.runtime[0].median(), res.runtime[0].q95());
  // 5% L jitter and 0.3% edge noise keep the distribution near the
  // deterministic point (edge noise is slowdown-only, so the mean sits a
  // little above it).
  EXPECT_NEAR(res.runtime[0].mean(), det, 0.05 * det);
  EXPECT_GE(res.runtime[0].max(), det * 0.9);
}

TEST(StochMc, FastPathOffBaseMatchesAnalyzerAtThatPoint) {
  // The shared-solver fast path solves at the sampled L through a space
  // built at the *base* L.  A LatencyParamSpace's lowering does not depend
  // on its base L (only o and G shape edge constants), so the result must
  // equal — bitwise — a deterministic analysis whose operating point is
  // the sampled L.
  const auto g = small_app_graph();
  const auto p = test_params();
  stoch::McSpec spec;
  spec.samples = 1;
  spec.L = stoch::Distribution::constant(4'500.0);
  spec.delta_Ls = {0.0, 10'000.0};
  spec.band_percents = {2.0};

  const auto res = stoch::run_mc(g, p, spec);
  loggops::Params moved = p;
  moved.L = 4'500.0;
  core::LatencyAnalyzer an(g, moved);
  const auto sweep = an.sweep(spec.delta_Ls);
  EXPECT_EQ(res.runtime[0].mean(), sweep[0].runtime);
  EXPECT_EQ(res.runtime[1].mean(), sweep[1].runtime);
  EXPECT_EQ(res.lambda_L.mean(), an.lambda_L());
  EXPECT_EQ(res.bands[0].tolerance_delta.mean(), an.tolerance_delta(2.0));
}

TEST(StochMc, GeneralPathMatchesManualPerturbedSolve) {
  // Bias-only edge noise has zero variance but is *not* degenerate, so it
  // drives the per-sample perturbed-space path with every factor exactly
  // 1 + bias — pin it, bitwise, against a hand-built PerturbedParamSpace.
  const auto g = small_app_graph();
  const auto p = test_params();
  stoch::McSpec spec;
  spec.samples = 1;
  spec.noise = {0.0, 0.01};
  spec.delta_Ls = {0.0, 10'000.0};
  spec.band_percents = {};

  const auto res = stoch::run_mc(g, p, spec);
  const auto space = std::make_shared<lp::PerturbedParamSpace>(
      std::make_shared<lp::LatencyParamSpace>(p),
      std::vector<double>(g.num_edges(), 1.0 + 0.01));
  lp::ParametricSolver solver(g, space);
  EXPECT_EQ(res.runtime[0].mean(), solver.solve(0, p.L).value);
  EXPECT_EQ(res.runtime[1].mean(), solver.solve(0, p.L + 10'000.0).value);
  EXPECT_EQ(res.lambda_L.mean(), solver.solve(0, p.L).gradient[0]);
}

TEST(StochMc, CrossBlockReductionIsSeamless) {
  // More samples than one reduction block (1024): the block boundary must
  // not drop or reorder samples.  Tiny graph keeps this fast.
  const auto g =
      schedgen::build_graph(apps::make_app_trace("lulesh", 8, 0.02));
  const auto p = test_params();
  stoch::McSpec spec;
  spec.samples = 1100;
  spec.L = stoch::Distribution::rel_normal(0.02);
  spec.delta_Ls = {0.0};
  spec.band_percents = {};
  spec.threads = 4;
  const auto res = stoch::run_mc(g, p, spec);
  EXPECT_EQ(res.runtime[0].count() + res.runtime[0].unbounded(), 1100u);

  // And the result equals the serial run, as everywhere else.
  spec.threads = 1;
  const auto serial = stoch::run_mc(g, p, spec);
  expect_summaries_equal(res.runtime[0], serial.runtime[0]);
}

TEST(StochMc, SpecValidation) {
  const auto g = small_app_graph();
  const auto p = test_params();
  stoch::McSpec spec;
  spec.samples = 0;
  EXPECT_THROW(stoch::run_mc(g, p, spec), UsageError);
  spec = {};
  spec.delta_Ls = {};
  EXPECT_THROW(stoch::run_mc(g, p, spec), UsageError);
  spec = {};
  spec.delta_Ls = {-5.0};
  EXPECT_THROW(stoch::run_mc(g, p, spec), UsageError);
  spec = {};
  spec.band_percents = {-1.0};
  EXPECT_THROW(stoch::run_mc(g, p, spec), UsageError);
  spec = {};
  spec.noise = {-0.5, 0.0};
  EXPECT_THROW(stoch::run_mc(g, p, spec), UsageError);
}

TEST(StochMc, SummaryCountsUnboundedSeparately) {
  stoch::Summary s;
  s.add(1.0);
  s.add(std::numeric_limits<double>::infinity());
  s.add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.unbounded(), 1u);
  EXPECT_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(StochMc, SummaryTableMarksAllUnboundedMetrics) {
  stoch::McResult res;
  res.samples = 2;
  res.delta_Ls = {0.0};
  res.runtime.resize(1);
  res.runtime[0].add(5.0);
  res.runtime[0].add(7.0);
  res.lambda_L.add(1.0);
  res.lambda_L.add(1.0);
  res.rho_L.add(0.5);
  res.rho_L.add(0.5);
  res.bands.resize(1);
  res.bands[0].percent = 1.0;
  res.bands[0].tolerance_delta.add(
      std::numeric_limits<double>::infinity());
  res.bands[0].tolerance_delta.add(
      std::numeric_limits<double>::infinity());
  const auto t = stoch::mc_summary_table(res, /*human=*/false);
  const auto& rows = t.data();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[3][3], "unbounded");  // mean column of the band row
  EXPECT_EQ(rows[3][2], "2");          // unbounded count column
}

}  // namespace
}  // namespace llamp
