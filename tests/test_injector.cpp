#include <gtest/gtest.h>

#include "injector/cluster_emulator.hpp"
#include "injector/designs.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace llamp::injector {
namespace {

Scenario fig8_scenario() {
  Scenario s;
  s.n_messages = 2;
  s.o = 1'000.0;
  s.base_latency = 3'000.0;
  s.bytes_cost = 500.0;
  s.delta_L = 10'000.0;  // ΔL > o, the regime Fig. 8 discusses
  return s;
}

TEST(Fig8ClosedForms, IntendedPanelA) {
  const Scenario s = fig8_scenario();
  const Outcome out = simulate(Design::kIntended, s);
  EXPECT_DOUBLE_EQ(out.sender_completion, 2 * s.o);
  EXPECT_DOUBLE_EQ(out.receiver_completion,
                   3 * s.o + s.base_latency + s.bytes_cost + s.delta_L);
}

TEST(Fig8ClosedForms, SenderDelayPanelB) {
  const Scenario s = fig8_scenario();
  const Outcome out = simulate(Design::kSenderDelay, s);
  EXPECT_DOUBLE_EQ(out.sender_completion, 2 * s.o + 2 * s.delta_L);
  EXPECT_DOUBLE_EQ(out.receiver_completion,
                   3 * s.o + s.base_latency + s.bytes_cost + 2 * s.delta_L);
}

TEST(Fig8ClosedForms, ProgressThreadPanelC) {
  const Scenario s = fig8_scenario();
  const Outcome out = simulate(Design::kProgressThread, s);
  EXPECT_DOUBLE_EQ(out.sender_completion, 2 * s.o);
  EXPECT_DOUBLE_EQ(out.receiver_completion,
                   2 * s.o + s.base_latency + s.bytes_cost + 2 * s.delta_L);
}

TEST(Fig8ClosedForms, DelayThreadPanelDMatchesIntended) {
  const Scenario s = fig8_scenario();
  const Outcome want = simulate(Design::kIntended, s);
  const Outcome got = simulate(Design::kDelayThread, s);
  EXPECT_DOUBLE_EQ(got.sender_completion, want.sender_completion);
  EXPECT_DOUBLE_EQ(got.receiver_completion, want.receiver_completion);
  EXPECT_DOUBLE_EQ(deviation_from_intended(Design::kDelayThread, s), 0.0);
}

TEST(Fig8ClosedForms, SmallDeltaRegime) {
  // When ΔL < o the progress thread keeps up: its error vanishes.
  Scenario s = fig8_scenario();
  s.delta_L = 400.0;  // < o
  EXPECT_DOUBLE_EQ(deviation_from_intended(Design::kProgressThread, s), 0.0);
  // The sender-delay design still perturbs both sides.
  EXPECT_GT(deviation_from_intended(Design::kSenderDelay, s), 0.0);
}

TEST(Fig8ClosedForms, ErrorGrowsWithMessageCount) {
  Scenario s = fig8_scenario();
  s.n_messages = 8;
  const auto err_b = deviation_from_intended(Design::kSenderDelay, s);
  const auto err_c = deviation_from_intended(Design::kProgressThread, s);
  // n-1 extra delays accumulate in both broken designs (the progress
  // thread's serial queue saves the o-spacing between arrivals).
  EXPECT_DOUBLE_EQ(err_b, 7 * s.delta_L);
  EXPECT_DOUBLE_EQ(err_c, 7 * (s.delta_L - s.o));
  EXPECT_THROW((void)simulate(Design::kIntended, Scenario{.n_messages = 0}),
               Error);
}

TEST(Emulator, DeterministicPerSeed) {
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  ClusterEmulator::Config cfg;
  cfg.seed = 7;
  ClusterEmulator a(g, p, cfg), b(g, p, cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.run_once(1'000.0), b.run_once(1'000.0));
  }
}

TEST(Emulator, NoiseOnlySlowsRunsDown) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  ClusterEmulator em(g, p);
  const double ideal = 1'500.0 + 0.0;  // T at ΔL = 0 (L base = 0)
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(em.run_once(0.0), ideal);
  }
}

TEST(Emulator, MeanTracksIdealWithinNoise) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  ClusterEmulator::Config cfg;
  cfg.noise_sigma = 0.01;
  ClusterEmulator em(g, p, cfg);
  const double measured = em.measure(1'000.0, 50);
  const double ideal = 1'000.0 + 1'115.0;  // L+1115 branch dominates
  EXPECT_NEAR(measured / ideal, 1.0 + 0.01 * 0.7979, 0.01);  // folded normal
}

TEST(Emulator, SystematicBiasApplied) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  ClusterEmulator::Config cfg;
  cfg.noise_sigma = 0.0;
  cfg.systematic_bias = 0.05;
  ClusterEmulator em(g, p, cfg);
  EXPECT_NEAR(em.run_once(1'000.0), 2'115.0 * 1.05, 1e-9);
}

TEST(Emulator, Validation) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  ClusterEmulator em(g, p);
  EXPECT_THROW((void)em.run_once(-5.0), Error);
  EXPECT_THROW((void)em.measure(0.0, 0), Error);
  ClusterEmulator::Config bad;
  bad.noise_sigma = -1.0;
  EXPECT_THROW(ClusterEmulator(g, p, bad), Error);
}

TEST(DesignNames, Distinct) {
  EXPECT_NE(to_string(Design::kIntended), to_string(Design::kSenderDelay));
  EXPECT_NE(to_string(Design::kProgressThread),
            to_string(Design::kDelayThread));
}

}  // namespace
}  // namespace llamp::injector
