#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/registry.hpp"
#include "core/placement.hpp"
#include "topo/spaces.hpp"
#include "schedgen/schedgen.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace llamp::core {
namespace {

graph::Graph ring_heavy_graph(int nranks) {
  // A ring of heavy traffic: rank r exchanges with (r+1) mod n repeatedly.
  trace::TraceBuilder tb(nranks);
  for (int iter = 0; iter < 6; ++iter) {
    for (int r = 0; r < nranks; ++r) {
      const int right = (r + 1) % nranks;
      tb.send(r, right, 32 * 1024);
      tb.recv(right, r, 32 * 1024);
      tb.compute(r, 20'000.0);
    }
  }
  return schedgen::build_graph(tb.finish());
}

loggops::Params params() {
  loggops::Params p;
  p.L = 1'400.0;
  p.o = 2'000.0;
  p.G = 0.013;
  return p;
}

TEST(CommunicationVolume, CountsBytesSymmetric) {
  trace::TraceBuilder tb(3);
  tb.send(0, 1, 100);
  tb.recv(1, 0, 100);
  tb.send(0, 2, 50);
  tb.recv(2, 0, 50);
  const auto g = schedgen::build_graph(tb.finish());
  const auto vol = communication_volume(g);
  EXPECT_EQ(vol[0 * 3 + 1], 100u);
  EXPECT_EQ(vol[1 * 3 + 0], 100u);
  EXPECT_EQ(vol[0 * 3 + 2], 50u);
  EXPECT_EQ(vol[1 * 3 + 2], 0u);
}

TEST(BlockPlacement, IdentityMapping) {
  const auto g = ring_heavy_graph(8);
  const topo::FatTree ft(4);
  const auto res = block_placement(g, params(), ft, WireCost{});
  EXPECT_EQ(res.placement, topo::identity_placement(8));
  EXPECT_GT(res.predicted_runtime, 0.0);
}

TEST(VolumeGreedy, ProducesValidPermutation) {
  const auto g = ring_heavy_graph(8);
  const topo::FatTree ft(4);
  const auto res = volume_greedy_placement(g, params(), ft, WireCost{});
  std::vector<int> sorted = res.placement;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(sorted[static_cast<std::size_t>(i)], 0);
  }
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(OptimizePlacement, NeverWorseThanItsStartingPoint) {
  const auto g = ring_heavy_graph(8);
  const topo::FatTree ft(4);
  const auto block = block_placement(g, params(), ft, WireCost{});
  const auto opt = optimize_placement(g, params(), ft, WireCost{});
  EXPECT_LE(opt.predicted_runtime, block.predicted_runtime + 1e-6);
  // The result is a valid permutation over the topology's nodes.
  std::vector<int> sorted = opt.placement;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(OptimizePlacement, ImprovesAnAdversarialInitialMapping) {
  // Scatter ring neighbors across pods, then let Algorithm 3 fix it.
  const auto g = ring_heavy_graph(8);
  const topo::FatTree ft(4);  // 16 nodes, pods of 4
  std::vector<int> adversarial{0, 4, 8, 12, 1, 5, 9, 13};
  const double before =
      placement_runtime(g, params(), ft, WireCost{}, adversarial);
  const auto opt =
      optimize_placement(g, params(), ft, WireCost{}, adversarial);
  EXPECT_LE(opt.predicted_runtime, before + 1e-6);
  if (opt.swaps > 0) {
    EXPECT_LT(opt.predicted_runtime, before);
  }
}

TEST(OptimizePlacement, Validation) {
  const auto g = ring_heavy_graph(8);
  const topo::FatTree tiny(2);  // 2 nodes < 8 ranks
  EXPECT_THROW((void)optimize_placement(g, params(), tiny, WireCost{}),
               TopoError);
  const topo::FatTree ft(4);
  EXPECT_THROW(
      (void)optimize_placement(g, params(), ft, WireCost{}, {0, 1, 2}),
      Error);
}

TEST(PlacementRuntime, SensitiveToMapping) {
  // Packing ring neighbors under shared switches must beat scattering them
  // across pods.
  const auto g = ring_heavy_graph(8);
  const topo::FatTree ft(4);
  const double packed =
      placement_runtime(g, params(), ft, WireCost{},
                        topo::identity_placement(8));
  const double scattered = placement_runtime(g, params(), ft, WireCost{},
                                             {0, 4, 8, 12, 2, 6, 10, 14});
  EXPECT_LT(packed, scattered);
}

TEST(AppPlacement, LlampNotWorseThanBlockOnIcon) {
  const auto g =
      schedgen::build_graph(apps::make_app_trace("icon", 8, 0.1));
  const topo::FatTree ft(4);
  const auto block = block_placement(g, params(), ft, WireCost{});
  const auto llamp = optimize_placement(g, params(), ft, WireCost{});
  EXPECT_LE(llamp.predicted_runtime, block.predicted_runtime + 1e-6);
}

}  // namespace
}  // namespace llamp::core
