#include <gtest/gtest.h>

#include <memory>

#include "apps/registry.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_simulator.hpp"
#include "test_support.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace llamp::sim {
namespace {

loggops::Params test_params() {
  loggops::Params p;
  p.L = 3'000.0;
  p.o = 1'200.0;
  p.G = 0.05;
  p.S = 256 * 1024;
  return p;
}

TEST(OperationalSemantics, EagerBlockingPair) {
  trace::TraceBuilder tb(2, 0.0);
  tb.compute(0, 1'000.0);
  tb.send(0, 1, 4);
  tb.compute(1, 500.0);
  tb.recv(1, 0, 4);
  TraceSimulator sim(tb.finish());
  loggops::Params p;
  p.L = 100.0;
  p.o = 10.0;
  p.G = 1.0;
  const auto res = sim.run(p);
  // Sender: 1000 + o.  Receiver: max(500, 1000 + o + L + 3G) + o.
  EXPECT_DOUBLE_EQ(res.rank_finish[0], 1'010.0);
  EXPECT_DOUBLE_EQ(res.rank_finish[1], 1'000.0 + 10.0 + 100.0 + 3.0 + 10.0);
  EXPECT_DOUBLE_EQ(res.makespan, res.rank_finish[1]);
}

TEST(OperationalSemantics, RendezvousBlockingPair) {
  trace::TraceBuilder tb(2, 0.0);
  const std::uint64_t big = 512 * 1024;
  tb.compute(0, 2'000.0);
  tb.send(0, 1, big);
  tb.compute(1, 500.0);
  tb.recv(1, 0, big);
  TraceSimulator sim(tb.finish());
  const loggops::Params p = test_params();
  const auto res = sim.run(p);
  const double B = (static_cast<double>(big) - 1) * p.G;
  const double tm = std::max(2'000.0 + p.o + p.L, 500.0 + p.o);
  const double t_r = tm + 2 * p.L + B + p.o;
  EXPECT_NEAR(res.rank_finish[1], t_r, 1e-6);
  EXPECT_NEAR(res.rank_finish[0], t_r + p.o, 1e-6);  // t_s' = t_r' + o
}

TEST(OperationalSemantics, LateSenderBlocksEagerReceiver) {
  // The receiver is rank 0 so the round-robin scheduler reaches it before
  // the (very late) sender has issued: it must suspend and be resumed.
  trace::TraceBuilder tb(2, 0.0);
  tb.recv(0, 1, 8);
  tb.compute(1, 1'000'000.0);  // very late sender
  tb.send(1, 0, 8);
  TraceSimulator sim(tb.finish());
  loggops::Params p;
  p.L = 10.0;
  p.o = 5.0;
  p.G = 0.0;
  const auto res = sim.run(p);
  EXPECT_DOUBLE_EQ(res.rank_finish[0], 1'000'000.0 + 5.0 + 10.0 + 5.0);
  EXPECT_GT(res.scheduler_passes, 1u);  // the receiver had to suspend
}

TEST(OperationalSemantics, SenderMayWaitBeforeReceiverWaits) {
  // The rendezvous handshake completes once the receive is *posted*: the
  // sender's wait may come first without deadlock, and its completion must
  // not depend on where the receiver's wait lands.
  trace::TraceBuilder tb(2, 0.0);
  const std::uint64_t big = 512 * 1024;
  const auto sreq = tb.isend(0, 1, big);
  tb.wait(0, sreq);  // sender waits immediately
  const auto rreq = tb.irecv(1, 0, big);
  tb.compute(1, 5'000'000.0);  // receiver computes forever before waiting
  tb.wait(1, rreq);
  TraceSimulator sim(tb.finish());
  const loggops::Params p = test_params();
  const auto res = sim.run(p);
  const double B = (static_cast<double>(big) - 1) * p.G;
  // t_s' = max(ts + o + L, t_post + o) + 2L + B + 2o with ts = t_post = 0.
  const double t_s = p.o + p.L + 2 * p.L + B + 2 * p.o;
  EXPECT_NEAR(res.rank_finish[0], t_s, 1e-6);
  // The receiver is dominated by its own compute, not by the handshake.
  EXPECT_NEAR(res.rank_finish[1], 5'000'000.0 + p.o + p.o, 1e-6);

}

TEST(OperationalSemantics, DeadlockDetected) {
  // Head-to-head blocking rendezvous sends.
  trace::TraceBuilder tb(2, 0.0);
  const std::uint64_t big = 512 * 1024;
  tb.send(0, 1, big);
  tb.send(1, 0, big);
  tb.recv(0, 1, big);
  tb.recv(1, 0, big);
  TraceSimulator sim(tb.finish());
  EXPECT_THROW((void)sim.run(test_params()), SimError);
}

TEST(OperationalSemantics, UnmatchedChannelThrows) {
  std::vector<schedgen::MidStream> streams(2);
  streams[0].push_back(schedgen::MidOp::send(1, 8, 0));
  TraceSimulator sim(std::move(streams), schedgen::Options{});
  EXPECT_THROW((void)sim.run(test_params()), SimError);
}

/// The repository's strongest property: the operational trace simulator,
/// which never sees an execution graph, agrees exactly with the LP solved
/// over Schedgen's graph — on random programs, across latencies, protocols,
/// and collective algorithms.
class TraceSimEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSimEquivalence, MatchesGraphLpOnRandomPrograms) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.nranks = 6;
  cfg.steps = 120;
  const auto t = testing::random_trace(cfg);

  schedgen::Options opts;
  loggops::Params p = test_params();
  opts.rendezvous_threshold = p.S;

  TraceSimulator trace_sim(t, opts);
  const auto g = schedgen::build_graph(t, opts);
  const auto space = std::make_shared<lp::LatencyParamSpace>(p);

  for (const double L : {0.0, 1'000.0, 25'000.0}) {
    p.L = L;
    const auto space_at = std::make_shared<lp::LatencyParamSpace>(p);
    lp::ParametricSolver solver(g, space_at);
    const double t_lp = solver.solve(0, L).value;
    const double t_op = trace_sim.run(p).makespan;
    EXPECT_NEAR(t_op, t_lp, 1e-6 * (1.0 + t_lp)) << "L=" << L;
  }
  (void)space;
}

TEST_P(TraceSimEquivalence, MatchesGraphReplayOnApps) {
  static const char* kApps[] = {"milc",   "hpcg",   "npb-ft",
                                "npb-lu", "lammps", "openmx"};
  const auto& app = kApps[GetParam() % 6];
  const auto t = apps::make_app_trace(app, 8, 0.08);
  const loggops::Params p = test_params();
  schedgen::Options opts;
  opts.rendezvous_threshold = p.S;

  TraceSimulator trace_sim(t, opts);
  const auto g = schedgen::build_graph(t, opts);
  Simulator graph_sim(g);
  EXPECT_NEAR(trace_sim.run(p).makespan, graph_sim.run(p).makespan,
              1e-6 * (1.0 + graph_sim.run(p).makespan))
      << app;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSimEquivalence,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(CollectiveAlgorithms, OperationalAgreementAcrossAlgos) {
  // Swap collective algorithms and keep the operational/graph agreement.
  trace::TraceBuilder tb(7, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 7; ++r) tb.compute(r, 1'000.0 * (r + 1));
    tb.allreduce_all(4096);
    tb.bcast_all(64 * 1024, 2);
    tb.alltoall_all(512);
  }
  const auto t = tb.finish();
  const loggops::Params p = test_params();
  for (const auto allreduce : {schedgen::AllreduceAlgo::kRecursiveDoubling,
                               schedgen::AllreduceAlgo::kRing}) {
    for (const auto bcast : {schedgen::BcastAlgo::kBinomialTree,
                             schedgen::BcastAlgo::kScatterAllgather}) {
      for (const auto alltoall : {schedgen::AlltoallAlgo::kLinear,
                                  schedgen::AlltoallAlgo::kBruck}) {
        schedgen::Options opts;
        opts.allreduce = allreduce;
        opts.bcast = bcast;
        opts.alltoall = alltoall;
        TraceSimulator trace_sim(t, opts);
        const auto g = schedgen::build_graph(t, opts);
        Simulator graph_sim(g);
        EXPECT_NEAR(trace_sim.run(p).makespan, graph_sim.run(p).makespan,
                    1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace llamp::sim
