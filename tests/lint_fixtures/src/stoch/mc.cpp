// Fixture: a designated hot-path file whose region markers were deleted,
// plus a stray end marker.

namespace fixture {

double sample(int i) { return static_cast<double>(i); }

// llamp-lint: hot-path end

}  // namespace fixture
