// Fixture: the hot-metric rule — by-name metric registration inside a
// hot-path region; recording through a pre-registered handle is fine.

namespace fixture {

struct Counter {
  void inc() {}
};
struct Registry {
  Counter counter(const char* name);
  Counter gauge(const char* name);
  Counter histogram(const char* name);
};

// Registration at setup time is the supported pattern.
inline Counter make_handle(Registry& reg) { return reg.counter("setup.ok"); }

// llamp-lint: hot-path begin
inline void record(Registry& reg, Counter& handle, const char* name) {
  handle.inc();                     // recording through a handle is fine
  reg.counter("hot.lookup").inc();  // seeded: by-name counter lookup
  reg.histogram("hot.hist");        // seeded: by-name histogram lookup
  reg.gauge(name);  // a forwarded (non-literal) name is not a registration
}
// llamp-lint: hot-path end

}  // namespace fixture
