// Fixture: unordered containers in an emitter file (det-unordered).
#include <string>
#include <unordered_map>

namespace fixture {

std::string emit(const std::unordered_map<int, std::string>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) out += v;  // hash-order bytes!
  return out;
}

}  // namespace fixture
