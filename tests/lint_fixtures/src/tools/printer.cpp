// Fixture (all-negative): src/tools/ may print, and unordered containers
// are fine outside emitter files.
#include <iostream>
#include <unordered_map>

namespace fixture {

void print(const std::unordered_map<int, int>& m) {
  std::cout << m.size() << "\n";
  std::cerr << "done\n";
}

}  // namespace fixture
