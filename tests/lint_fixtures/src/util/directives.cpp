// Fixture: directive hygiene — typos and unknown rules must surface, not
// silently do nothing.

namespace fixture {

// llamp-lint: allow(no-such-rule): suppress something that cannot exist
inline int a() { return 1; }

// llamp-lint: allow(hot-alloc missing close paren
inline int b() { return 2; }

// llamp-lint: hot-pathbegin
inline int c() { return 3; }

}  // namespace fixture
