#include <random>

#pragma once

using namespace std;

namespace fixture {

inline unsigned seed_me() {
  random_device rd;
  return rd();
}

}  // namespace fixture
