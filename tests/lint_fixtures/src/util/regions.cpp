// Fixture: region-marker edge cases — nesting and an unterminated region.

namespace fixture {

// llamp-lint: hot-path begin
// llamp-lint: hot-path begin
inline int twice(int v) { return 2 * v; }
// llamp-lint: hot-path end

// llamp-lint: hot-path begin
inline int thrice(int v) { return 3 * v; }

}  // namespace fixture
