// Fixture: wall clocks, C randomness, and iostream in library code.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

namespace fixture {

double jitter() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return static_cast<double>(std::rand()) / RAND_MAX;
}

long stamp() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

void report(double v) { std::cout << "jitter: " << v << "\n"; }

// Negative cases: banned words in comments (rand, srand, std::cout) and in
// string literals are invisible to the token scanner.
inline const char* doc() { return "uses rand() and std::cout internally"; }

}  // namespace fixture
