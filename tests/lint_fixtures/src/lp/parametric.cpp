// Fixture: hot-path allocation bans and the allow() mechanics, in a
// designated hot-path file.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Workspace {
  std::vector<double> buf;
};

// llamp-lint: hot-path begin
double steady_state(Workspace& ws, int n) {
  auto* leak = new double[4];  // seeded: raw allocation
  std::string label = "solve";  // seeded: string construction
  ws.buf.push_back(1.0);  // seeded: unsuppressed growth call
  // llamp-lint: allow(hot-alloc): capacity reserved by the caller; this
  // suppression is valid and must eat exactly one finding.
  ws.buf.push_back(2.0);
  // llamp-lint: allow(hot-alloc)
  ws.buf.push_back(3.0);  // reasonless allow suppresses nothing
  // llamp-lint: allow(hot-alloc): stale — the next line does not allocate.
  label.clear();
  delete[] leak;
  return static_cast<double>(n) + ws.buf.back();
}
// llamp-lint: hot-path end

// Outside the region the same calls are fine.
void setup(Workspace& ws, int n) { ws.buf.resize(static_cast<size_t>(n)); }

}  // namespace fixture
