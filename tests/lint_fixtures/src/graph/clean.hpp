#pragma once

// Fixture (all-negative): a fully conforming header.  Tricky tokens live
// only where the stripper must hide them: R"(rand srand std::cout)" raw
// strings, 'r' char literals, /* std::chrono::steady_clock::now() */.
#include <string>

namespace fixture {

inline std::string renown(bool operand) {
  // "renown" and "operand" contain banned words as substrings; identifier
  // boundaries must keep them invisible.
  const char* raw = R"delim(srand(time(nullptr)) std::cerr)delim";
  return operand ? std::string(raw) : std::string(1, 'r');
}

}  // namespace fixture
