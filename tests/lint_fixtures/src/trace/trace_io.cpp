// Fixture: the *_io.cpp naming convention also classifies as emitter.
#include <unordered_set>

namespace fixture {

int count(const std::unordered_set<int>& s) {
  return static_cast<int>(s.size());
}

}  // namespace fixture
