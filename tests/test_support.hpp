#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "trace/builder.hpp"
#include "util/rng.hpp"

namespace llamp::testing {

/// Deterministic random MPI program generator for property tests.  Programs
/// are generated causally (every operation depends only on operations
/// generated earlier), so the resulting execution graphs are acyclic by
/// construction for any rendezvous threshold.
struct RandomProgramConfig {
  int nranks = 6;
  int steps = 120;
  std::uint64_t seed = 1;
  bool collectives = true;
  bool nonblocking = true;
  /// Probability that a message is rendezvous-sized (>= 256 KiB).
  double large_message_prob = 0.15;
  double max_compute_ns = 50'000.0;
};

inline trace::Trace random_trace(const RandomProgramConfig& cfg) {
  Rng rng(cfg.seed);
  trace::TraceBuilder tb(cfg.nranks);
  // Pending nonblocking requests.  A send's wait must never be issued while
  // its matching receive's wait is still pending: under the rendezvous
  // protocol that ordering is a real MPI deadlock (the send completes only
  // after the receive does), and this generator only produces deadlock-free
  // programs.  Deadlock *detection* is tested separately in test_schedgen.
  struct Pending {
    int rank;
    std::int64_t req;
    int pair_id;
    bool is_recv;
  };
  std::vector<Pending> pending;

  const auto flush_index = [&](std::size_t i) {
    const Pending p = pending[i];
    if (!p.is_recv) {
      // Flush the matching receive's wait first if it is still open.
      for (std::size_t j = 0; j < pending.size(); ++j) {
        if (pending[j].is_recv && pending[j].pair_id == p.pair_id) {
          tb.wait(pending[j].rank, pending[j].req);
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(j));
          break;
        }
      }
      for (std::size_t j = 0; j < pending.size(); ++j) {
        if (!pending[j].is_recv && pending[j].pair_id == p.pair_id) {
          i = j;
          break;
        }
      }
    }
    tb.wait(pending[i].rank, pending[i].req);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
  };

  const auto flush_one = [&] {
    if (pending.empty()) return;
    flush_index(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1)));
  };

  for (int s = 0; s < cfg.steps; ++s) {
    const double dice = rng.uniform();
    const int a = static_cast<int>(rng.uniform_int(0, cfg.nranks - 1));
    int b = static_cast<int>(rng.uniform_int(0, cfg.nranks - 2));
    if (b >= a) ++b;
    const bool large = rng.bernoulli(cfg.large_message_prob);
    const std::uint64_t bytes =
        large ? static_cast<std::uint64_t>(rng.uniform_int(256 * 1024, 400 * 1024))
              : static_cast<std::uint64_t>(rng.uniform_int(8, 32 * 1024));
    const int tag = static_cast<int>(rng.uniform_int(0, 3));

    if (dice < 0.35) {
      tb.compute(a, rng.uniform(0.0, cfg.max_compute_ns));
    } else if (dice < 0.6 || !cfg.nonblocking) {
      tb.send(a, b, bytes, tag);
      tb.recv(b, a, bytes, tag);
    } else if (dice < 0.85) {
      pending.push_back({a, tb.isend(a, b, bytes, tag), s, false});
      pending.push_back({b, tb.irecv(b, a, bytes, tag), s, true});
      while (pending.size() > 12) flush_one();
    } else if (cfg.collectives) {
      switch (rng.uniform_int(0, 4)) {
        case 0: tb.allreduce_all(static_cast<std::uint64_t>(rng.uniform_int(8, 4096))); break;
        case 1: tb.barrier_all(); break;
        case 2: tb.bcast_all(1024, static_cast<int>(rng.uniform_int(0, cfg.nranks - 1))); break;
        case 3: tb.allgather_all(512); break;
        default: tb.reduce_all(2048, 0); break;
      }
    } else {
      tb.compute(b, rng.uniform(0.0, cfg.max_compute_ns));
    }
  }
  while (!pending.empty()) flush_one();
  return tb.finish();
}

/// The paper's running example (Fig. 4c): two ranks, one eager 4-byte
/// message, o = 0, G = 5 ns/B, computes 0.1 / 1 / 0.5 / 1 us.
/// Known results: T(L) = max(L + 1115 ns, 1500 ns), L_c = 385 ns,
/// T(500 ns) = 1615 ns, 2 us-budget tolerance = 885 ns.
inline graph::Graph running_example_graph() {
  graph::Graph g(2);
  const auto c0 = g.add_calc(0, 100.0);
  const auto s = g.add_send(0, 1, 4);
  const auto c1 = g.add_calc(0, 1000.0);
  const auto c2 = g.add_calc(1, 500.0);
  const auto r = g.add_recv(1, 0, 4);
  const auto c3 = g.add_calc(1, 1000.0);
  g.add_local_edge(c0, s);
  g.add_local_edge(s, c1);
  g.add_local_edge(c2, r);
  g.add_local_edge(r, c3);
  g.add_comm_edge(s, r, /*rendezvous=*/false);
  g.finalize();
  return g;
}

inline loggops::Params running_example_params() {
  loggops::Params p;
  p.L = 0.0;
  p.o = 0.0;
  p.G = 5.0;
  p.S = 1 << 20;
  return p;
}

}  // namespace llamp::testing
