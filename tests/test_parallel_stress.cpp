// Concurrency stress for the two long-lived shared structures behind the
// api::Engine: util/parallel::ThreadPool (persistent workers reused across
// jobs) and core::GraphCache (build-once graphs behind per-key locks).
// These suites are the primary target of the ThreadSanitizer CI job — they
// are written to maximize contention, not coverage: many tiny jobs, many
// threads racing one key, exceptions thrown mid-job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <vector>

#include "core/graph_cache.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace llamp {
namespace {

constexpr std::uint64_t kS = 256 * 1024;  // the default rendezvous threshold

// ---------------------------------------------------------------------------
// ThreadPool under reuse pressure.
// ---------------------------------------------------------------------------

TEST(ThreadPoolStress, ManyTinyJobsBackToBack) {
  // Hundreds of small jobs on one pool: every submission re-publishes job_
  // and re-arms the generation/remaining handshake, which is where a
  // missed-wakeup or torn-read bug would live.
  ThreadPool pool(8);
  for (int round = 0; round < 400; ++round) {
    std::atomic<long long> sum{0};
    const std::size_t n = 1 + static_cast<std::size_t>(round % 37);
    pool.for_workers(n, 0, [&](int, std::size_t i) {
      sum.fetch_add(static_cast<long long>(i) + 1, std::memory_order_relaxed);
    });
    const long long nn = static_cast<long long>(n);
    ASSERT_EQ(sum.load(), nn * (nn + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolStress, ExceptionStormLeavesPoolServiceable) {
  // Alternate failing and clean jobs; a failed job must drain fully (no
  // worker left running into the next job's state) and rethrow exactly one
  // exception on the caller.
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> ran{0};
    try {
      pool.for_workers(64, 0, [&](int, std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (round % 2 == 0 && i % 19 == 3) throw Error("storm");
      });
      EXPECT_EQ(round % 2, 1) << "even rounds must throw";
      EXPECT_EQ(ran.load(), 64);
    } catch (const Error&) {
      EXPECT_EQ(round % 2, 0) << "odd rounds must not throw";
    }
  }
  std::atomic<int> count{0};
  pool.for_workers(32, 0, [&](int, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolStress, WorkerScratchStaysPerWorker) {
  // Per-worker accumulators indexed by the worker id: if two threads ever
  // shared a worker index concurrently, TSan would flag the unsynchronized
  // writes and the totals would drift.
  ThreadPool pool(6);
  for (int round = 0; round < 50; ++round) {
    std::vector<long long> per_worker(static_cast<std::size_t>(pool.size()),
                                      0);
    pool.for_workers(257, 0, [&](int w, std::size_t i) {
      per_worker[static_cast<std::size_t>(w)] +=
          static_cast<long long>(i) + 1;
    });
    long long total = 0;
    for (const long long v : per_worker) total += v;
    ASSERT_EQ(total, 257LL * 258 / 2);
  }
}

// ---------------------------------------------------------------------------
// GraphCache: racing first touches of one key, and mixed warm/get traffic.
// ---------------------------------------------------------------------------

core::GraphKey small_key(double scale) {
  return core::GraphKey{"lulesh", 8, scale, kS};
}

TEST(GraphCacheStress, ConcurrentSameKeyBuildsExactlyOnce) {
  core::GraphCache cache;
  constexpr std::size_t kCallers = 16;
  std::vector<const graph::Graph*> got(kCallers, nullptr);
  parallel_for(kCallers, static_cast<int>(kCallers), [&](std::size_t i) {
    got[i] = &cache.get(small_key(0.02));
  });
  for (const graph::Graph* g : got) EXPECT_EQ(g, got[0]);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.built, 1u);
  EXPECT_EQ(stats.hits, kCallers - 1);
}

TEST(GraphCacheStress, DistinctKeysBuildInParallelThenHit) {
  core::GraphCache cache;
  const std::vector<core::GraphKey> keys = {
      small_key(0.02), small_key(0.03), {"hpcg", 8, 0.02, kS},
      {"milc", 8, 0.02, kS}};
  cache.warm(keys, 8);
  EXPECT_EQ(cache.stats().built, keys.size());
  EXPECT_EQ(cache.stats().hits, 0u) << "warm() must not count hits";

  // Every post-warm get, from any thread, is a pure lookup.
  constexpr std::size_t kLookups = 64;
  std::vector<const graph::Graph*> got(kLookups, nullptr);
  parallel_for(kLookups, 8, [&](std::size_t i) {
    got[i] = &cache.get(keys[i % keys.size()]);
  });
  EXPECT_EQ(cache.stats().built, keys.size());
  EXPECT_EQ(cache.stats().hits, kLookups);
  std::set<const graph::Graph*> distinct(got.begin(), got.end());
  EXPECT_EQ(distinct.size(), keys.size());
}

TEST(GraphCacheStress, HammerMixedColdAndWarmKeys) {
  // Threads race gets across a small key set while some keys are still
  // cold, exercising slot creation (map mutex), first-touch builds (slot
  // mutex), and hit counting all at once.  ThreadPool drives it so the
  // pool and the cache are stressed together, engine-style.
  core::GraphCache cache;
  const std::vector<core::GraphKey> keys = {small_key(0.02), small_key(0.025),
                                            small_key(0.03)};
  ThreadPool pool(8);
  std::vector<const graph::Graph*> by_key(keys.size(), nullptr);
  for (int round = 0; round < 6; ++round) {
    pool.for_workers(48, 0, [&](int, std::size_t i) {
      const std::size_t k = i % keys.size();
      const graph::Graph& g = cache.get(keys[k]);
      ASSERT_GT(g.num_vertices(), 0u);
    });
  }
  for (std::size_t k = 0; k < keys.size(); ++k) {
    by_key[k] = &cache.get(keys[k]);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.built, keys.size());
  EXPECT_EQ(stats.hits, 6u * 48u + keys.size() - stats.built);
  EXPECT_EQ(std::set<const graph::Graph*>(by_key.begin(), by_key.end()).size(),
            keys.size());
}

}  // namespace
}  // namespace llamp
