// Concurrency stress for the long-lived shared structures behind the
// api::Engine: util/parallel::ThreadPool (persistent workers reused across
// jobs), core::GraphCache (build-once graphs behind per-key locks), and
// the obs registry/tracer (sharded metric cells, per-thread span lanes).
// These suites are the primary target of the ThreadSanitizer CI job — they
// are written to maximize contention, not coverage: many tiny jobs, many
// threads racing one key, exceptions thrown mid-job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/graph_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace llamp {
namespace {

constexpr std::uint64_t kS = 256 * 1024;  // the default rendezvous threshold

// ---------------------------------------------------------------------------
// ThreadPool under reuse pressure.
// ---------------------------------------------------------------------------

TEST(ThreadPoolStress, ManyTinyJobsBackToBack) {
  // Hundreds of small jobs on one pool: every submission re-publishes job_
  // and re-arms the generation/remaining handshake, which is where a
  // missed-wakeup or torn-read bug would live.
  ThreadPool pool(8);
  for (int round = 0; round < 400; ++round) {
    std::atomic<long long> sum{0};
    const std::size_t n = 1 + static_cast<std::size_t>(round % 37);
    pool.for_workers(n, 0, [&](int, std::size_t i) {
      sum.fetch_add(static_cast<long long>(i) + 1, std::memory_order_relaxed);
    });
    const long long nn = static_cast<long long>(n);
    ASSERT_EQ(sum.load(), nn * (nn + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolStress, ExceptionStormLeavesPoolServiceable) {
  // Alternate failing and clean jobs; a failed job must drain fully (no
  // worker left running into the next job's state) and rethrow exactly one
  // exception on the caller.
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> ran{0};
    try {
      pool.for_workers(64, 0, [&](int, std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (round % 2 == 0 && i % 19 == 3) throw Error("storm");
      });
      EXPECT_EQ(round % 2, 1) << "even rounds must throw";
      EXPECT_EQ(ran.load(), 64);
    } catch (const Error&) {
      EXPECT_EQ(round % 2, 0) << "odd rounds must not throw";
    }
  }
  std::atomic<int> count{0};
  pool.for_workers(32, 0, [&](int, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolStress, WorkerScratchStaysPerWorker) {
  // Per-worker accumulators indexed by the worker id: if two threads ever
  // shared a worker index concurrently, TSan would flag the unsynchronized
  // writes and the totals would drift.
  ThreadPool pool(6);
  for (int round = 0; round < 50; ++round) {
    std::vector<long long> per_worker(static_cast<std::size_t>(pool.size()),
                                      0);
    pool.for_workers(257, 0, [&](int w, std::size_t i) {
      per_worker[static_cast<std::size_t>(w)] +=
          static_cast<long long>(i) + 1;
    });
    long long total = 0;
    for (const long long v : per_worker) total += v;
    ASSERT_EQ(total, 257LL * 258 / 2);
  }
}

// ---------------------------------------------------------------------------
// parallel_for_workers_chunked: the chunk-claiming scheduler behind the MC
// general path.  Its determinism contract is the same as the strided
// variant — fn(i) may depend only on i — and these suites pin it under
// exactly the conditions that would expose a violation: a strongly
// imbalanced per-index cost, several thread counts, and TSan (this file is
// part of the ThreadSanitizer CI job).
// ---------------------------------------------------------------------------

// A deliberately lopsided per-index computation: indices divisible by 16
// cost ~200x the rest, so static striding would leave most workers idle
// while chunk claiming keeps them busy.  The result for index i is a fixed
// sequence of FP ops depending only on i — any scheduler that leaks state
// across indices or workers changes the bytes.
double imbalanced_value(std::size_t i) {
  const int iters = (i % 16 == 0) ? 4000 : 20;
  double x = static_cast<double>(i) + 1.0;
  for (int k = 0; k < iters; ++k) {
    x = x * 1.0000001 + 1.0 / x;
  }
  return x;
}

TEST(ChunkedWorkersStress, BitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 1200;
  std::vector<double> ref(kN, 0.0);
  parallel_for_workers_chunked(kN, 1, 4, [&](int, std::size_t i) {
    ref[i] = imbalanced_value(i);
  });
  for (const int threads : {2, 8}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, kN + 1}) {
      std::vector<double> got(kN, 0.0);
      parallel_for_workers_chunked(kN, threads, chunk,
                                   [&](int, std::size_t i) {
                                     got[i] = imbalanced_value(i);
                                   });
      ASSERT_EQ(got, ref) << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(ChunkedWorkersStress, CoversEveryIndexExactlyOnce) {
  // Tiny chunks maximize claim contention on the shared atomic counter;
  // a double-grant or a skipped tail would show up as a count != 1.
  std::vector<std::atomic<int>> seen(1013);
  parallel_for_workers_chunked(seen.size(), 8, 1, [&](int w, std::size_t i) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 8);
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& s : seen) ASSERT_EQ(s.load(), 1);
}

TEST(ChunkedWorkersStress, ZeroChunkMeansOne) {
  std::vector<std::atomic<int>> seen(64);
  parallel_for_workers_chunked(seen.size(), 4, 0, [&](int, std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& s : seen) ASSERT_EQ(s.load(), 1);
}

TEST(ChunkedWorkersStress, PerWorkerScratchStaysPerWorker) {
  // Same invariant the strided variant and ThreadPool guarantee: the worker
  // id is unique per concurrent thread, so unsynchronized per-worker
  // accumulators are safe (TSan verifies the claim).
  constexpr int kWorkers = 6;
  std::vector<long long> per_worker(kWorkers, 0);
  parallel_for_workers_chunked(999, kWorkers, 5, [&](int w, std::size_t i) {
    per_worker[static_cast<std::size_t>(w)] += static_cast<long long>(i) + 1;
  });
  long long total = 0;
  for (const long long v : per_worker) total += v;
  EXPECT_EQ(total, 999LL * 1000 / 2);
}

TEST(ChunkedWorkersStress, PropagatesExactlyOneException) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    try {
      parallel_for_workers_chunked(256, 8, 3, [&](int, std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 41 == 7) throw Error("chunk storm");
      });
      FAIL() << "must throw";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "chunk storm");
    }
  }
}

// ---------------------------------------------------------------------------
// obs::Registry under contention: sharded counter cells and histogram
// shards are the engine's only metrics synchronization, so TSan gets the
// worst case — every thread hammering one handle — and the merged snapshot
// must still sum exactly.
// ---------------------------------------------------------------------------

TEST(ObsRegistryStress, ConcurrentIncrementsMergeExactly) {
  for (const int shards : {1, 4}) {
    obs::Registry reg(obs::Registry::Options{.shards = shards});
    obs::Counter hot = reg.counter("hot");
    obs::Histogram lat = reg.histogram("lat");
    ThreadPool pool(8);
    constexpr std::size_t kTasks = 64;
    constexpr int kPerTask = 500;
    for (int round = 0; round < 4; ++round) {
      pool.for_workers(kTasks, 0, [&](int, std::size_t i) {
        for (int k = 0; k < kPerTask; ++k) {
          hot.inc();
          lat.record(static_cast<double>(i % 7) + 1.0);
        }
      });
    }
    const obs::Snapshot snap = reg.snapshot();
    constexpr std::uint64_t kExpected = 4ull * kTasks * kPerTask;
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].second, kExpected) << "shards=" << shards;
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, kExpected) << "shards=" << shards;
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : snap.histograms[0].buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, kExpected);
  }
}

TEST(ObsRegistryStress, RegistrationRacesRecording) {
  // Late registration (a surface registering its own counter mid-session)
  // must coexist with hot recording on other handles: registration takes
  // the registry mutex, recording never does.
  obs::Registry reg;
  obs::Counter hot = reg.counter("hot");
  ThreadPool pool(6);
  pool.for_workers(600, 0, [&](int, std::size_t i) {
    if (i % 50 == 0) {
      obs::Counter fresh =
          reg.counter("late." + std::to_string(i / 50));
      fresh.inc();
    }
    hot.inc();
  });
  const obs::Snapshot snap = reg.snapshot();
  std::uint64_t hot_total = 0;
  std::uint64_t late_names = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "hot") hot_total = v;
    if (name.rfind("late.", 0) == 0) {
      ++late_names;
      EXPECT_EQ(v, 1u) << name;
    }
  }
  EXPECT_EQ(hot_total, 600u);
  EXPECT_EQ(late_names, 12u);
}

TEST(ObsTraceStress, ConcurrentSpansLandInPerThreadLanes) {
  obs::Tracer tracer;
  tracer.enable();
  ThreadPool pool(6);
  constexpr std::size_t kTasks = 300;
  pool.for_workers(kTasks, 0, [&](int, std::size_t) {
    const obs::SpanScope outer(tracer, "outer");
    const obs::SpanScope inner(tracer, "inner");
  });
  EXPECT_EQ(tracer.span_count(), 2 * kTasks);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

// ---------------------------------------------------------------------------
// GraphCache: racing first touches of one key, and mixed warm/get traffic.
// ---------------------------------------------------------------------------

core::GraphKey small_key(double scale) {
  return core::GraphKey{"lulesh", 8, scale, kS};
}

TEST(GraphCacheStress, ConcurrentSameKeyBuildsExactlyOnce) {
  core::GraphCache cache;
  constexpr std::size_t kCallers = 16;
  std::vector<const graph::Graph*> got(kCallers, nullptr);
  parallel_for(kCallers, static_cast<int>(kCallers), [&](std::size_t i) {
    got[i] = &cache.get(small_key(0.02));
  });
  for (const graph::Graph* g : got) EXPECT_EQ(g, got[0]);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.built, 1u);
  EXPECT_EQ(stats.hits, kCallers - 1);
}

TEST(GraphCacheStress, DistinctKeysBuildInParallelThenHit) {
  core::GraphCache cache;
  const std::vector<core::GraphKey> keys = {
      small_key(0.02), small_key(0.03), {"hpcg", 8, 0.02, kS},
      {"milc", 8, 0.02, kS}};
  cache.warm(keys, 8);
  EXPECT_EQ(cache.stats().built, keys.size());
  EXPECT_EQ(cache.stats().hits, 0u) << "warm() must not count hits";

  // Every post-warm get, from any thread, is a pure lookup.
  constexpr std::size_t kLookups = 64;
  std::vector<const graph::Graph*> got(kLookups, nullptr);
  parallel_for(kLookups, 8, [&](std::size_t i) {
    got[i] = &cache.get(keys[i % keys.size()]);
  });
  EXPECT_EQ(cache.stats().built, keys.size());
  EXPECT_EQ(cache.stats().hits, kLookups);
  std::set<const graph::Graph*> distinct(got.begin(), got.end());
  EXPECT_EQ(distinct.size(), keys.size());
}

TEST(GraphCacheStress, HammerMixedColdAndWarmKeys) {
  // Threads race gets across a small key set while some keys are still
  // cold, exercising slot creation (map mutex), first-touch builds (slot
  // mutex), and hit counting all at once.  ThreadPool drives it so the
  // pool and the cache are stressed together, engine-style.
  core::GraphCache cache;
  const std::vector<core::GraphKey> keys = {small_key(0.02), small_key(0.025),
                                            small_key(0.03)};
  ThreadPool pool(8);
  std::vector<const graph::Graph*> by_key(keys.size(), nullptr);
  for (int round = 0; round < 6; ++round) {
    pool.for_workers(48, 0, [&](int, std::size_t i) {
      const std::size_t k = i % keys.size();
      const graph::Graph& g = cache.get(keys[k]);
      ASSERT_GT(g.num_vertices(), 0u);
    });
  }
  for (std::size_t k = 0; k < keys.size(); ++k) {
    by_key[k] = &cache.get(keys[k]);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.built, keys.size());
  EXPECT_EQ(stats.hits, 6u * 48u + keys.size() - stats.built);
  EXPECT_EQ(std::set<const graph::Graph*>(by_key.begin(), by_key.end()).size(),
            keys.size());
}

}  // namespace
}  // namespace llamp
