#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "apps/registry.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "test_support.hpp"

// Allocation-counter wall for the solver hot path: after a warm-up solve
// has grown a workspace's buffers, steady-state solves and segment-walk
// sweeps through that workspace must perform ZERO heap allocations.  The
// global operator new/delete are replaced with counting versions — this
// test lives in its own binary so the override cannot disturb any other
// suite.

namespace {
thread_local std::size_t g_allocations = 0;
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace llamp::lp {
namespace {

TEST(AllocationFree, SteadyStateSolvesAllocateNothing) {
  const auto g =
      schedgen::build_graph(apps::make_app_trace("lulesh", 8, 0.02));
  const auto p = loggops::NetworkConfig::cscs_testbed();
  ParametricSolver solver(g, std::make_shared<LatencyParamSpace>(p));
  ParametricSolver::Workspace ws;

  // Warm-up: grows every buffer to its structural maximum.
  (void)solver.solve(0, p.L, ws);

  const std::size_t before = g_allocations;
  for (int i = 0; i < 100; ++i) {
    const auto& sol = solver.solve(0, p.L + 1'000.0 * i, ws);
    ASSERT_GT(sol.value, 0.0);
  }
  EXPECT_EQ(g_allocations, before)
      << "steady-state solve() allocated on the heap";
}

TEST(AllocationFree, SegmentWalkSweepAllocatesNothing) {
  const auto g =
      schedgen::build_graph(apps::make_app_trace("hpcg", 8, 0.02));
  const auto p = loggops::NetworkConfig::cscs_testbed();
  ParametricSolver solver(g, std::make_shared<LatencyParamSpace>(p));
  ParametricSolver::Workspace ws;

  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(p.L + 500.0 * i);
  std::vector<ParametricSolver::SweepEval> out(xs.size());

  solver.sweep(0, xs, ws, out.data());  // warm-up

  const std::size_t before = g_allocations;
  solver.sweep(0, xs, ws, out.data());
  EXPECT_EQ(g_allocations, before)
      << "steady-state sweep() allocated on the heap";
}

TEST(AllocationFree, BatchSolvesAllocateNothingAfterWarmup) {
  // Same wall for the batched kernel: once prepare_batch has grown the
  // cursor's lane buffers, solve_batch / solve_batch_ranges / the lockstep
  // budget search must be heap-silent, at full blocks and at every tail
  // width.
  const auto g =
      schedgen::build_graph(apps::make_app_trace("lulesh", 8, 0.02));
  const auto p = loggops::NetworkConfig::cscs_testbed();
  ParametricSolver solver(g, std::make_shared<LatencyParamSpace>(p));
  ParametricSolver::BatchCursor bc;

  std::vector<double> xs(kBatchWidth + 3);
  for (std::size_t l = 0; l < xs.size(); ++l) {
    xs[l] = p.L + 250.0 * static_cast<double>(l);
  }
  std::vector<ParametricSolver::BatchPoint> pts(xs.size());
  std::vector<double> from(xs.size(), p.L);
  std::vector<double> budgets(xs.size());
  std::vector<double> tols(xs.size());
  const double v0 = solver.solve(0, p.L).value;
  for (std::size_t l = 0; l < xs.size(); ++l) {
    budgets[l] = v0 * (1.02 + 0.01 * static_cast<double>(l));
  }

  // Warm-up: one call per entry point grows every lane buffer.
  solver.solve_batch(0, xs.data(), xs.size(), bc, pts.data());
  solver.solve_batch_ranges(0, xs.data(), xs.size(), bc, pts.data());
  solver.max_param_for_budget_from_batch(0, from.data(), budgets.data(),
                                         xs.size(), bc, tols.data());

  const std::size_t before = g_allocations;
  for (int round = 0; round < 20; ++round) {
    for (std::size_t n : {xs.size(), kBatchWidth, std::size_t{5},
                          std::size_t{1}}) {
      solver.solve_batch(0, xs.data(), n, bc, pts.data());
      solver.solve_batch_ranges(0, xs.data(), n, bc, pts.data());
      ASSERT_GT(pts[0].value, 0.0);
    }
    solver.max_param_for_budget_from_batch(0, from.data(), budgets.data(),
                                           xs.size(), bc, tols.data());
  }
  EXPECT_EQ(g_allocations, before)
      << "steady-state batch kernel allocated on the heap";
}

TEST(AllocationFree, WorkspaceReuseAcrossSolversOnlyGrows) {
  // Moving a warm workspace to a *smaller* scenario must stay
  // allocation-free; only growth may allocate.
  const auto big =
      schedgen::build_graph(apps::make_app_trace("lulesh", 8, 0.03));
  const auto small = llamp::testing::running_example_graph();
  const auto p = loggops::NetworkConfig::cscs_testbed();
  ParametricSolver sb(big, std::make_shared<LatencyParamSpace>(p));
  ParametricSolver ss(
      small,
      std::make_shared<LatencyParamSpace>(llamp::testing::running_example_params()));
  ParametricSolver::Workspace ws;
  (void)sb.solve(0, p.L, ws);

  const std::size_t before = g_allocations;
  for (int i = 0; i < 50; ++i) {
    (void)ss.solve(0, 100.0 * i, ws);
    (void)sb.solve(0, p.L + 100.0 * i, ws);
  }
  EXPECT_EQ(g_allocations, before);
}

}  // namespace
}  // namespace llamp::lp
