#include <gtest/gtest.h>

#include <algorithm>

#include "graph/costs.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "util/error.hpp"

namespace llamp::graph {
namespace {

Graph two_rank_pair(bool rendezvous) {
  Graph g(2);
  const auto s = g.add_send(0, 1, 100);
  const auto r = g.add_recv(1, 0, 100);
  g.add_comm_edge(s, r, rendezvous);
  g.finalize();
  return g;
}

TEST(Construction, VertexKindsAndFields) {
  Graph g(2);
  const auto c = g.add_calc(0, 42.0);
  const auto p = g.add_post(1);
  const auto s = g.add_send(0, 1, 8, 3);
  const auto r = g.add_recv(1, 0, 8, 3);
  g.add_comm_edge(s, r, false);
  g.add_local_edge(c, s);
  g.finalize();
  EXPECT_EQ(g.vertex(c).kind, VertexKind::kCalc);
  EXPECT_DOUBLE_EQ(g.vertex(c).duration, 42.0);
  EXPECT_EQ(g.vertex(p).kind, VertexKind::kPost);
  EXPECT_EQ(g.vertex(s).peer, 1);
  EXPECT_EQ(g.vertex(r).tag, 3);
  EXPECT_EQ(g.comm_partner(s), r);
  EXPECT_EQ(g.comm_partner(r), s);
  EXPECT_EQ(g.comm_partner(c), kInvalidVertex);
}

TEST(Construction, Errors) {
  EXPECT_THROW(Graph(0), GraphError);
  Graph g(2);
  EXPECT_THROW(g.add_calc(5, 1.0), GraphError);
  EXPECT_THROW(g.add_calc(0, -1.0), GraphError);
  EXPECT_THROW(g.add_send(0, 0, 8), GraphError);
  EXPECT_THROW(g.add_send(0, 9, 8), GraphError);
  const auto a = g.add_calc(0, 1.0);
  EXPECT_THROW(g.add_local_edge(a, a), GraphError);
  EXPECT_THROW(g.add_local_edge(a, 99), GraphError);
  const auto b = g.add_calc(1, 1.0);
  EXPECT_THROW(g.add_local_edge(a, b), GraphError);  // cross-rank local edge
}

TEST(CommEdgeInvariants, KindAndEndpointChecks) {
  Graph g(3);
  const auto s = g.add_send(0, 1, 64);
  const auto r_wrong_rank = g.add_recv(2, 0, 64);
  EXPECT_THROW(g.add_comm_edge(s, r_wrong_rank, false), GraphError);
  const auto r_wrong_size = g.add_recv(1, 0, 65);
  EXPECT_THROW(g.add_comm_edge(s, r_wrong_size, false), GraphError);
  const auto c = g.add_calc(0, 1.0);
  EXPECT_THROW(g.add_comm_edge(c, r_wrong_size, false), GraphError);
}

TEST(Finalize, RejectsDuplicateCommEdges) {
  Graph g(2);
  const auto s = g.add_send(0, 1, 8);
  const auto r = g.add_recv(1, 0, 8);
  g.add_comm_edge(s, r, false);
  g.add_comm_edge(s, r, false);
  EXPECT_THROW(g.finalize(), GraphError);
}

TEST(Finalize, RejectsDanglingSendOrRecv) {
  Graph g(2);
  (void)g.add_send(0, 1, 8);
  EXPECT_THROW(g.finalize(), GraphError);
}

TEST(Finalize, DetectsCycle) {
  Graph g(1);
  const auto a = g.add_calc(0, 1.0);
  const auto b = g.add_calc(0, 1.0);
  g.add_local_edge(a, b);
  g.add_local_edge(b, a);
  EXPECT_THROW(g.finalize(), GraphError);
}

TEST(Finalize, GuardsAccessorsBeforeFinalize) {
  Graph g(1);
  const auto a = g.add_calc(0, 1.0);
  EXPECT_THROW((void)g.out_edges(a), GraphError);
  EXPECT_THROW((void)g.topo_order(), GraphError);
  g.finalize();
  EXPECT_THROW((void)g.add_calc(0, 1.0), GraphError);
}

TEST(TopoOrder, EveryEdgeGoesForward) {
  Graph g(2);
  const auto c0 = g.add_calc(0, 0.0);
  const auto c1 = g.add_calc(1, 1.0);
  const auto c2 = g.add_calc(0, 2.0);
  const auto c3 = g.add_calc(1, 3.0);
  const auto c4 = g.add_calc(1, 4.0);
  const auto s = g.add_send(0, 1, 8);
  const auto r = g.add_recv(1, 0, 8);
  g.add_local_edge(c0, s);
  g.add_local_edge(c1, r);
  g.add_comm_edge(s, r, false);
  g.add_local_edge(s, c2);
  g.add_local_edge(r, c3);
  g.add_local_edge(c3, c4);
  g.finalize();
  const auto topo = g.topo_order();
  std::vector<std::size_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (const Edge& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(EdgeCostSpecs, EagerVsRendezvous) {
  const Graph ge = two_rank_pair(false);
  const Graph gr = two_rank_pair(true);
  const Edge& eager = ge.edges()[0];
  const Edge& rdzv = gr.edges()[0];
  EXPECT_EQ(eager.l_mult, 1);
  EXPECT_EQ(rdzv.l_mult, 3);
  EXPECT_EQ(eager.bytes, 100u);
  EXPECT_EQ(rdzv.bytes, 100u);
}

TEST(EdgeCostSpecs, IssueAndCompletionEdges) {
  Graph g(2);
  const auto pre = g.add_calc(1, 0.0);
  const auto post = g.add_post(1);
  const auto s = g.add_send(0, 1, 300'000);
  const auto r = g.add_recv(1, 0, 300'000);
  const auto w = g.add_calc(0, 0.0);
  g.add_local_edge(pre, post);
  g.add_issue_edge(post, r, /*through_post=*/true);
  g.add_comm_edge(s, r, true);
  g.add_send_completion_edge(r, w);
  g.finalize();
  const Edge& issue = g.edges()[1];
  EXPECT_EQ(issue.kind, EdgeKind::kIssue);
  EXPECT_EQ(issue.o_mult, 0);
  EXPECT_EQ(issue.l_mult, 2);
  const Edge& compl_edge = g.edges()[3];
  EXPECT_EQ(compl_edge.kind, EdgeKind::kSendCompletion);
  EXPECT_EQ(compl_edge.o_mult, 1);
  // Wire pairs of protocol edges refer to the message's (sender, receiver).
  EXPECT_EQ(g.edge_wire_pair(issue), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(g.edge_wire_pair(compl_edge), (std::pair<int, int>{0, 1}));
}

TEST(CostSemantics, VertexCosts) {
  loggops::Params p;
  p.o = 100.0;
  p.O = 0.5;
  Vertex calc;
  calc.kind = VertexKind::kCalc;
  calc.duration = 77.0;
  EXPECT_DOUBLE_EQ(vertex_cost(calc, p), 77.0);
  Vertex send;
  send.kind = VertexKind::kSend;
  send.bytes = 10;
  EXPECT_DOUBLE_EQ(vertex_cost(send, p), 105.0);
  Vertex post;
  post.kind = VertexKind::kPost;
  EXPECT_DOUBLE_EQ(vertex_cost(post, p), 100.0);
}

TEST(CostSemantics, EdgeCosts) {
  const Graph g = two_rank_pair(true);
  loggops::Params p;
  p.L = 10.0;
  p.o = 3.0;
  p.G = 2.0;
  // Rendezvous comm edge: 3L + (100-1)*G.
  EXPECT_DOUBLE_EQ(edge_cost(g, g.edges()[0], p), 3 * 10.0 + 99 * 2.0);
}

TEST(GoalIo, RoundTripPreservesStructure) {
  Graph g(2);
  const auto c = g.add_calc(0, 12.5);
  const auto post = g.add_post(1);
  const auto s = g.add_send(0, 1, 300'000, 4);
  const auto r = g.add_recv(1, 0, 300'000, 4);
  const auto w = g.add_calc(0, 0.0);
  g.add_local_edge(c, s);
  g.add_local_edge(post, r);
  g.add_issue_edge(post, r, true);
  g.add_comm_edge(s, r, true);
  g.add_send_completion_edge(r, w);
  g.finalize();

  const Graph parsed = goal_from_text(to_goal(g));
  ASSERT_EQ(parsed.num_vertices(), g.num_vertices());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parsed.vertex(v).kind, g.vertex(v).kind);
    EXPECT_EQ(parsed.vertex(v).rank, g.vertex(v).rank);
    EXPECT_EQ(parsed.vertex(v).bytes, g.vertex(v).bytes);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(parsed.edges()[e].kind, g.edges()[e].kind);
    EXPECT_EQ(parsed.edges()[e].l_mult, g.edges()[e].l_mult);
    EXPECT_EQ(parsed.edges()[e].o_mult, g.edges()[e].o_mult);
  }
}

TEST(GoalIo, RejectsMalformed) {
  EXPECT_THROW((void)goal_from_text(""), GraphError);
  EXPECT_THROW((void)goal_from_text("LLAMP_GOAL 1\nranks 1\nv 5 calc 0 1\n"),
               GraphError);
  EXPECT_THROW((void)goal_from_text("LLAMP_GOAL 1\nranks 1\nx 0\n"),
               GraphError);
}

TEST(DotExport, MentionsEveryVertex) {
  const Graph g = two_rank_pair(false);
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("v0"), std::string::npos);
  EXPECT_NE(dot.find("v1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Stats, StringSummarizesCounts) {
  const Graph g = two_rank_pair(false);
  const auto s = g.stats_string();
  EXPECT_NE(s.find("send=1"), std::string::npos);
  EXPECT_NE(s.find("comm=1"), std::string::npos);
  // Campaign cache memory is observable per graph.
  EXPECT_NE(s.find("bytes="), std::string::npos);
  EXPECT_EQ(s.find("bytes=0"), std::string::npos);
}

TEST(Stats, MemoryBytesCoversVertexAndEdgeStorage) {
  const Graph g = two_rank_pair(false);
  // At minimum the vertex, edge, and two CSR adjacency arrays are held.
  EXPECT_GE(g.memory_bytes(),
            g.num_vertices() * sizeof(Vertex) + g.num_edges() * sizeof(Edge) +
                2 * g.num_edges() * sizeof(Graph::Adj));
}

}  // namespace
}  // namespace llamp::graph
