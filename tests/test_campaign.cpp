#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "apps/registry.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace llamp::core {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.apps = {"lulesh", "hpcg"};
  spec.ranks = {8};
  spec.scales = {0.02};
  spec.delta_Ls = {0.0, us(10.0), us(20.0)};
  return spec;
}

TEST(CampaignExpansion, GridOrderIsAppsOuterConfigsInner) {
  CampaignSpec spec = small_spec();
  spec.topologies = {"none", "fat-tree"};
  spec.configs = {{"a", loggops::NetworkConfig::cscs_testbed(), true},
                  {"b", loggops::NetworkConfig::piz_daint(), true}};
  const Campaign c(spec);
  const auto& sc = c.scenarios();
  ASSERT_EQ(sc.size(), 2u * 2u * 2u);  // 2 apps x 2 topologies x 2 configs
  EXPECT_EQ(sc[0].app, "lulesh");
  EXPECT_EQ(sc[0].topology, "none");
  EXPECT_EQ(sc[0].config, "a");
  EXPECT_EQ(sc[1].config, "b");       // configs innermost
  EXPECT_EQ(sc[2].topology, "fat-tree");
  EXPECT_EQ(sc[4].app, "hpcg");       // apps outermost
}

TEST(CampaignExpansion, ClampedRankCollisionsAreDeduplicated) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh"};
  spec.ranks = {8, 9, 27};  // LULESH wants cubes: 9 clamps onto 8
  const Campaign c(spec);
  ASSERT_EQ(c.scenarios().size(), 2u);
  EXPECT_EQ(c.scenarios()[0].ranks, 8);
  EXPECT_EQ(c.scenarios()[1].ranks, 27);
}

TEST(CampaignExpansion, DuplicateAxisValuesAreDeduplicated) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh", "lulesh"};
  spec.scales = {0.02, 0.02};
  spec.topologies = {"none", "none"};
  const Campaign c(spec);
  EXPECT_EQ(c.scenarios().size(), 1u);  // never analyze one scenario twice

  // Equal parameter vectors dedupe whatever their labels...
  spec.configs = {{"x", loggops::NetworkConfig::cscs_testbed(), true},
                  {"y", loggops::NetworkConfig::cscs_testbed(), true}};
  EXPECT_EQ(Campaign(spec).scenarios().size(), 1u);
  // ...but one label on *distinct* parameters is ambiguous.
  spec.configs = {{"a", loggops::NetworkConfig::cscs_testbed(), true},
                  {"a", loggops::NetworkConfig::piz_daint(), true}};
  EXPECT_THROW(Campaign{spec}, UsageError);
}

TEST(CampaignExpansion, InvalidLogGpsVariantIsAUsageError) {
  CampaignSpec spec = small_spec();
  loggops::Params bad = loggops::NetworkConfig::cscs_testbed();
  bad.L = -5.0;
  spec.configs = {{"bad", bad, true}};
  EXPECT_THROW(Campaign{spec}, UsageError);
}

TEST(CampaignExpansion, PerAppOverheadFollowsTable2UnlessPinned) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh", "hpcg"};
  const Campaign c(spec);  // default config: o_is_default = true
  EXPECT_NE(c.scenarios()[0].params.o, c.scenarios()[1].params.o);

  loggops::Params pinned = loggops::NetworkConfig::cscs_testbed(7'777.0);
  spec.configs = {{"pinned", pinned, /*o_is_default=*/false}};
  const Campaign p(spec);
  EXPECT_EQ(p.scenarios()[0].params.o, 7'777.0);
  EXPECT_EQ(p.scenarios()[1].params.o, 7'777.0);
}

TEST(CampaignExpansion, DegenerateSpecsAreUsageErrors) {
  EXPECT_THROW(Campaign(CampaignSpec{}), UsageError);  // empty app list
  {
    CampaignSpec spec = small_spec();
    spec.delta_Ls = {-1.0};
    EXPECT_THROW(Campaign{spec}, UsageError);  // negative ΔL
  }
  {
    CampaignSpec spec = small_spec();
    spec.delta_Ls.clear();
    EXPECT_THROW(Campaign{spec}, UsageError);  // empty ΔL grid
  }
  {
    CampaignSpec spec = small_spec();
    spec.topologies = {"torus"};
    EXPECT_THROW(Campaign{spec}, UsageError);  // unknown topology
  }
  {
    CampaignSpec spec = small_spec();
    spec.scales = {0.0};
    EXPECT_THROW(Campaign{spec}, UsageError);  // non-positive scale
  }
  {
    CampaignSpec spec = small_spec();
    spec.band_percents = {-1.0};
    EXPECT_THROW(Campaign{spec}, UsageError);  // negative band
  }
  EXPECT_THROW(Campaign(std::vector<Scenario>{}), UsageError);
}

TEST(CampaignRun, GraphsAreCachedAcrossTopologiesAndConfigs) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh"};
  spec.topologies = {"none", "fat-tree", "dragonfly"};
  spec.configs = {{"a", loggops::NetworkConfig::cscs_testbed(), true},
                  {"b", loggops::NetworkConfig::piz_daint(), true}};
  Campaign c(spec);
  (void)c.run();
  EXPECT_EQ(c.stats().scenarios_run, 6u);
  // One (app, ranks, scale, S) tuple -> one graph for all six scenarios.
  EXPECT_EQ(c.stats().graphs_built, 1u);
}

TEST(CampaignRun, DistinctRendezvousThresholdsSplitTheGraphCache) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh"};
  loggops::Params small_s = loggops::NetworkConfig::cscs_testbed();
  small_s.S = 4 * 1024;
  spec.configs = {{"a", loggops::NetworkConfig::cscs_testbed(), true},
                  {"b", small_s, true}};
  Campaign c(spec);
  (void)c.run();
  EXPECT_EQ(c.stats().graphs_built, 2u);
}

TEST(CampaignRun, FlatScenarioMatchesLatencyAnalyzer) {
  CampaignSpec spec = small_spec();
  spec.apps = {"milc"};
  spec.band_percents = {1.0, 5.0};
  Campaign c(spec);
  const auto results = c.run();
  ASSERT_EQ(results.size(), 1u);
  const auto& res = results[0];

  const auto g = schedgen::build_graph(
      apps::make_app_trace("milc", res.scenario.ranks, res.scenario.scale));
  const LatencyAnalyzer an(g, res.scenario.params);
  EXPECT_DOUBLE_EQ(res.base_runtime, an.base_runtime());
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    const TimeNs d = res.scenario.delta_Ls[i];
    EXPECT_DOUBLE_EQ(res.points[i].runtime, an.predict_runtime(d));
    EXPECT_DOUBLE_EQ(res.points[i].lambda, an.lambda_L(d));
    EXPECT_DOUBLE_EQ(res.points[i].rho, an.rho_L(d));
  }
  ASSERT_EQ(res.bands.size(), 2u);
  EXPECT_DOUBLE_EQ(res.bands[0].tolerance_delta, an.tolerance_delta(1.0));
  EXPECT_DOUBLE_EQ(res.bands[1].tolerance_delta, an.tolerance_delta(5.0));
}

TEST(CampaignRun, TopologyScenarioMatchesDirectWireSpaceSolve) {
  CampaignSpec spec = small_spec();
  spec.apps = {"icon"};
  spec.topologies = {"dragonfly"};
  Campaign c(spec);
  const auto results = c.run();
  ASSERT_EQ(results.size(), 1u);
  const auto& res = results[0];

  const auto g = schedgen::build_graph(
      apps::make_app_trace("icon", res.scenario.ranks, res.scenario.scale));
  const topo::Dragonfly df(spec.topo.df_groups, spec.topo.df_routers,
                           spec.topo.df_hosts);
  auto space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_wire_latency_space(res.scenario.params, df,
                                    topo::identity_placement(res.scenario.ranks),
                                    spec.topo.l_wire, spec.topo.d_switch));
  const lp::ParametricSolver solver(g, space);
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    const auto sol =
        solver.solve(0, spec.topo.l_wire + res.scenario.delta_Ls[i]);
    EXPECT_DOUBLE_EQ(res.points[i].runtime, sol.value);
    EXPECT_DOUBLE_EQ(res.points[i].lambda, sol.gradient[0]);
  }
}

TEST(CampaignRun, ResultsAreIdenticalAcrossThreadCounts) {
  CampaignSpec spec = small_spec();
  spec.topologies = {"none", "fat-tree"};
  spec.band_percents = {1.0};

  spec.threads = 1;
  Campaign serial(spec);
  const auto a = serial.run();
  spec.threads = 8;
  Campaign parallel(spec);
  const auto b = parallel.run();

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scenario.app, b[i].scenario.app);
    EXPECT_EQ(a[i].scenario.topology, b[i].scenario.topology);
    for (std::size_t j = 0; j < a[i].points.size(); ++j) {
      // Bitwise equality, not NEAR: determinism is the contract.
      EXPECT_EQ(a[i].points[j].runtime, b[i].points[j].runtime);
      EXPECT_EQ(a[i].points[j].lambda, b[i].points[j].lambda);
      EXPECT_EQ(a[i].points[j].rho, b[i].points[j].rho);
    }
  }
  // And so are the rendered emitter bytes, in every format.
  for (const auto format :
       {OutputFormat::kTable, OutputFormat::kCsv, OutputFormat::kJson}) {
    EXPECT_EQ(render(campaign_points_table(a, format == OutputFormat::kTable),
                     format),
              render(campaign_points_table(b, format == OutputFormat::kTable),
                     format));
  }
}

TEST(CampaignRun, ProbeValuesLandOnTheMatchingPoints) {
  CampaignSpec spec = small_spec();
  spec.apps = {"lulesh"};
  Campaign c(spec);
  const auto results = c.run([](const Scenario& s, const graph::Graph& g) {
    EXPECT_GT(g.num_vertices(), 0u);
    std::vector<double> v;
    for (std::size_t i = 0; i < s.delta_Ls.size(); ++i) {
      v.push_back(100.0 * static_cast<double>(i));
    }
    return v;
  });
  ASSERT_EQ(results.size(), 1u);
  for (std::size_t i = 0; i < results[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[0].points[i].probe,
                     100.0 * static_cast<double>(i));
  }
  // A probe name appends the probe column to the shared emitters.
  const Table with_probe =
      campaign_points_table(results, /*human=*/false, "measured_ns");
  EXPECT_EQ(with_probe.headers().back(), "measured_ns");
  EXPECT_EQ(with_probe.data().at(1).back(), "100.0");
  const Table without_probe = campaign_points_table(results, false);
  EXPECT_EQ(without_probe.headers().back(), "rho_l");
  // A probe returning the wrong arity is an analysis error.
  EXPECT_THROW(c.run([](const Scenario&, const graph::Graph&) {
                 return std::vector<double>{1.0};
               }),
               Error);
}

TEST(CampaignRun, TooSmallOrMalformedTopologyIsAUsageError) {
  CampaignSpec spec = small_spec();
  spec.apps = {"hpcg"};
  spec.ranks = {64};
  spec.topologies = {"fat-tree"};
  spec.topo.ft_radix = 4;  // 16 nodes < 64 ranks
  // Raised at construction, before any graph is built.
  EXPECT_THROW(Campaign{spec}, UsageError);
  spec.topo.ft_radix = 0;  // invalid shape
  EXPECT_THROW(Campaign{spec}, UsageError);
}

// ---------------------------------------------------------------------------
// The mc axis
// ---------------------------------------------------------------------------

TEST(CampaignMc, AxisOffLeavesResultsUntouched) {
  CampaignSpec spec = small_spec();
  Campaign campaign(spec);
  for (const auto& res : campaign.run()) EXPECT_TRUE(res.mc.empty());
}

TEST(CampaignMc, SummariesAlignAndAreThreadCountInvariant) {
  CampaignSpec spec = small_spec();
  spec.mc.samples = 16;
  spec.mc.seed = 9;
  spec.mc.sigma_L = 0.05;
  spec.mc.noise.sigma = 0.003;

  spec.threads = 1;
  const auto serial = Campaign(spec).run();
  spec.threads = 8;
  const auto parallel = Campaign(spec).run();

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].mc.size(), serial[i].points.size());
    for (std::size_t k = 0; k < serial[i].mc.size(); ++k) {
      EXPECT_EQ(serial[i].mc[k].mean, parallel[i].mc[k].mean);
      EXPECT_EQ(serial[i].mc[k].stddev, parallel[i].mc[k].stddev);
      EXPECT_EQ(serial[i].mc[k].q05, parallel[i].mc[k].q05);
      EXPECT_EQ(serial[i].mc[k].q95, parallel[i].mc[k].q95);
      EXPECT_GT(serial[i].mc[k].stddev, 0.0);
      EXPECT_LE(serial[i].mc[k].q05, serial[i].mc[k].q95);
    }
  }
}

TEST(CampaignMc, DegenerateAxisReproducesDeterministicPoints) {
  // One sample, zero-variance knobs: the mc mean at each grid point is the
  // deterministic runtime at that point, bitwise.
  CampaignSpec spec = small_spec();
  spec.mc.samples = 1;
  const auto results = Campaign(spec).run();
  for (const auto& res : results) {
    ASSERT_EQ(res.mc.size(), res.points.size());
    for (std::size_t k = 0; k < res.points.size(); ++k) {
      EXPECT_EQ(res.mc[k].mean, res.points[k].runtime);
      EXPECT_EQ(res.mc[k].q05, res.points[k].runtime);
      EXPECT_EQ(res.mc[k].q95, res.points[k].runtime);
      EXPECT_EQ(res.mc[k].stddev, 0.0);
    }
  }
}

TEST(CampaignMc, AxisValidation) {
  {
    CampaignSpec spec = small_spec();
    spec.mc.samples = -1;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
  {
    CampaignSpec spec = small_spec();
    spec.mc.samples = 4;
    spec.mc.sigma_L = -0.5;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
  {
    CampaignSpec spec = small_spec();
    spec.mc.samples = 4;
    spec.mc.noise.bias = -1.5;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
  {
    // Malformed knobs are rejected even with the axis off...
    CampaignSpec spec = small_spec();
    spec.mc.sigma_G = -0.2;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
  {
    // ...and well-formed jitter with samples == 0 is an orphan, not a
    // silent deterministic run.
    CampaignSpec spec = small_spec();
    spec.mc.sigma_L = 0.05;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
  {
    // Physical topologies have no single L to resample.
    CampaignSpec spec = small_spec();
    spec.topologies = {"fat-tree"};
    spec.mc.samples = 4;
    EXPECT_THROW(Campaign{spec}, UsageError);
  }
}

TEST(CampaignMc, ExplicitScenarioListCarriesTheAxis) {
  CampaignSpec grid = small_spec();
  std::vector<Scenario> scenarios = Campaign(grid).scenarios();
  McAxis mc;
  mc.samples = 8;
  mc.sigma_L = 0.05;
  Campaign campaign(std::move(scenarios), TopologyOptions{}, 0, mc);
  for (const auto& res : campaign.run()) {
    ASSERT_EQ(res.mc.size(), res.points.size());
    EXPECT_GT(res.mc[0].stddev, 0.0);
  }
}

}  // namespace
}  // namespace llamp::core
