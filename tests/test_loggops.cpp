#include <gtest/gtest.h>

#include "loggops/params.hpp"
#include "loggops/wire_model.hpp"
#include "util/error.hpp"

namespace llamp::loggops {
namespace {

TEST(Params, ProtocolThreshold) {
  Params p;
  p.S = 1024;
  EXPECT_EQ(p.protocol(0), Protocol::kEager);
  EXPECT_EQ(p.protocol(1023), Protocol::kEager);
  EXPECT_EQ(p.protocol(1024), Protocol::kRendezvous);
  EXPECT_EQ(p.protocol(1 << 20), Protocol::kRendezvous);
}

TEST(Params, BytesCostIsLogGp) {
  Params p;
  p.G = 2.0;
  EXPECT_DOUBLE_EQ(p.bytes_cost(0), 0.0);
  EXPECT_DOUBLE_EQ(p.bytes_cost(1), 0.0);  // (s-1)G
  EXPECT_DOUBLE_EQ(p.bytes_cost(5), 8.0);
}

TEST(Params, CpuCostIncludesPerByteOverhead) {
  Params p;
  p.o = 100.0;
  p.O = 0.5;
  EXPECT_DOUBLE_EQ(p.cpu_cost(10), 105.0);
}

TEST(Params, ValidationRejectsNegatives) {
  Params p;
  p.L = -1.0;
  EXPECT_THROW(p.validate(), Error);
  p = Params{};
  p.S = 0;
  EXPECT_THROW(p.validate(), Error);
  p = Params{};
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, ValidationRejectsNonFiniteValues) {
  // NaN compares false against every bound, so without an explicit check a
  // NaN parameter would pass validation and surface only as a null in
  // serialized output.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    for (int field = 0; field < 5; ++field) {
      Params p;
      (field == 0   ? p.L
       : field == 1 ? p.o
       : field == 2 ? p.g
       : field == 3 ? p.G
                    : p.O) = bad;
      EXPECT_THROW(p.validate(), Error) << "field=" << field;
    }
  }
}

TEST(Params, ToStringMentionsEveryField) {
  const auto s = Params{}.to_string();
  for (const char* key : {"L=", "o=", "g=", "G=", "O=", "S="}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(NetworkConfigPresets, CscsTestbed) {
  const Params p = NetworkConfig::cscs_testbed();
  EXPECT_DOUBLE_EQ(p.L, 3'000.0);
  EXPECT_DOUBLE_EQ(p.G, 0.018);
  EXPECT_EQ(p.S, 256u * 1024u);
}

TEST(NetworkConfigPresets, PizDaint) {
  const Params p = NetworkConfig::piz_daint();
  EXPECT_DOUBLE_EQ(p.L, 1'400.0);
  EXPECT_DOUBLE_EQ(p.G, 0.013);
}

TEST(NetworkConfigPresets, Table2Overheads) {
  EXPECT_DOUBLE_EQ(NetworkConfig::table2_overhead("lulesh", 8), 5'000.0);
  EXPECT_DOUBLE_EQ(NetworkConfig::table2_overhead("icon", 64), 8'600.0);
  EXPECT_DOUBLE_EQ(NetworkConfig::table2_overhead("lammps", 32), 32'700.0);
  // Unknown node count falls back to the smallest configuration.
  EXPECT_DOUBLE_EQ(NetworkConfig::table2_overhead("cloverleaf", 999), 6'100.0);
  EXPECT_THROW((void)NetworkConfig::table2_overhead("nonesuch", 8), Error);
}

TEST(WireModels, UniformWire) {
  Params p;
  p.L = 123.0;
  p.G = 0.5;
  const UniformWire w(p);
  EXPECT_DOUBLE_EQ(w.latency(0, 7), 123.0);
  EXPECT_DOUBLE_EQ(w.gap_per_byte(3, 4), 0.5);
}

}  // namespace
}  // namespace llamp::loggops
