#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "apps/namd.hpp"
#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace llamp::apps {
namespace {

loggops::Params testbed() {
  return loggops::NetworkConfig::cscs_testbed(5'000.0);
}

TEST(DimsCreate, NearUniformFactorizations) {
  EXPECT_EQ(dims_create(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_THROW((void)dims_create(0, 2), Error);
}

TEST(CubeSide, ExactOrThrow) {
  EXPECT_EQ(exact_cube_side(27), 3);
  EXPECT_EQ(exact_cube_side(1), 1);
  EXPECT_THROW((void)exact_cube_side(20), Error);
}

TEST(GridTopology, CoordsRoundTripAndNeighbors) {
  const Grid<3> g{{2, 3, 4}};
  EXPECT_EQ(g.size(), 24);
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g.rank(g.coords(r)), r);
  }
  EXPECT_EQ(g.neighbor(0, 2, +1), 1);
  EXPECT_EQ(g.neighbor(0, 2, -1), 3);  // periodic wrap
  EXPECT_TRUE(g.has_neighbor(0, 2, +1));
  EXPECT_FALSE(g.has_neighbor(0, 2, -1));
}

TEST(Registry, EveryAppProducesAnalyzableGraphs) {
  for (const auto& name : app_names()) {
    const int ranks = supported_ranks(name, name == "lulesh" ? 8 : 8);
    const auto t = make_app_trace(name, ranks, 0.1);
    SCOPED_TRACE(name);
    EXPECT_NO_THROW(t.validate());
    const auto g = schedgen::build_graph(t);
    EXPECT_GT(g.num_vertices(), 0u);
    sim::Simulator sim(g);
    const auto res = sim.run(testbed());
    EXPECT_GT(res.makespan, 0.0);
  }
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW((void)make_app_trace("hal9000", 8), Error);
  EXPECT_THROW((void)supported_ranks("lulesh", 0), Error);
}

TEST(Registry, SupportedRanksCubesLulesh) {
  EXPECT_EQ(supported_ranks("lulesh", 100), 64);
  EXPECT_EQ(supported_ranks("lulesh", 27), 27);
  EXPECT_EQ(supported_ranks("milc", 100), 100);
}

TEST(Registry, ScaleControlsTraceLength) {
  const auto small = make_app_trace("cloverleaf", 8, 0.1);
  const auto large = make_app_trace("cloverleaf", 8, 0.5);
  EXPECT_LT(small.total_events(), large.total_events());
}

TEST(Registry, SeedChangesJitterOnly) {
  const auto a = make_app_trace("hpcg", 8, 0.1, 1);
  const auto b = make_app_trace("hpcg", 8, 0.1, 2);
  EXPECT_EQ(a.total_events(), b.total_events());
  EXPECT_NE(a, b);
  EXPECT_EQ(a, make_app_trace("hpcg", 8, 0.1, 1));  // deterministic
}

TEST(Lulesh, RequiresCubicRankCount) {
  EXPECT_THROW((void)make_app_trace("lulesh", 10), Error);
  EXPECT_NO_THROW((void)make_app_trace("lulesh", 8, 0.05));
}

TEST(Scaling, MilcStrongScalingShrinksRuntime) {
  // Strong scaling: more ranks -> less compute per rank -> shorter runtime.
  const auto g16 = schedgen::build_graph(make_app_trace("milc", 16, 0.1));
  const auto g32 = schedgen::build_graph(make_app_trace("milc", 32, 0.1));
  const double t16 = sim::Simulator(g16).run(testbed()).makespan;
  const double t32 = sim::Simulator(g32).run(testbed()).makespan;
  EXPECT_LT(t32, t16);
}

TEST(Scaling, MilcToleranceDropsWithScale) {
  // The paper's strong-scaling observation (Fig. 9 discussion).
  const auto g8 = schedgen::build_graph(make_app_trace("milc", 8, 0.1));
  const auto g32 = schedgen::build_graph(make_app_trace("milc", 32, 0.1));
  core::LatencyAnalyzer a8(g8, testbed());
  core::LatencyAnalyzer a32(g32, testbed());
  EXPECT_LT(a32.tolerance_delta(5.0), a8.tolerance_delta(5.0));
}

TEST(Scaling, LuleshWeakScalingRuntimeRoughlyStable) {
  const auto g8 = schedgen::build_graph(make_app_trace("lulesh", 8, 0.1));
  const auto g64 = schedgen::build_graph(make_app_trace("lulesh", 64, 0.1));
  const double t8 = sim::Simulator(g8).run(testbed()).makespan;
  const double t64 = sim::Simulator(g64).run(testbed()).makespan;
  EXPECT_LT(t64, t8 * 1.5);  // weak scaling: no blow-up
  EXPECT_GT(t64, t8 * 0.8);
}

TEST(Namd, TracedLatencyIncreasesOverlap) {
  // Fig. 12: traces recorded at higher ΔL defer waits further and tolerate
  // more latency.
  NamdConfig base;
  base.nranks = 8;
  base.steps = 10;
  NamdConfig adapted = base;
  adapted.traced_delta_L = 4 * base.patch_compute;

  const auto g0 = schedgen::build_graph(make_namd_trace(base));
  const auto g1 = schedgen::build_graph(make_namd_trace(adapted));
  core::LatencyAnalyzer an0(g0, testbed());
  core::LatencyAnalyzer an1(g1, testbed());
  const double big = us(400.0);
  EXPECT_LE(an1.predict_runtime(big), an0.predict_runtime(big));
}

TEST(Jitter, ZeroJitterIsExactBase) {
  EXPECT_DOUBLE_EQ(jittered_compute(1'000.0, 0.0, 1, 3, 4), 1'000.0);
  const double v = jittered_compute(1'000.0, 0.1, 1, 3, 4);
  EXPECT_GE(v, 900.0);
  EXPECT_LE(v, 1'100.0);
  EXPECT_DOUBLE_EQ(v, jittered_compute(1'000.0, 0.1, 1, 3, 4));
}

}  // namespace
}  // namespace llamp::apps
