#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace llamp::lp {
namespace {

std::shared_ptr<LatencyParamSpace> running_space() {
  return std::make_shared<LatencyParamSpace>(
      llamp::testing::running_example_params());
}

TEST(RunningExample, ExactPaperNumbers) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());

  // T(0.5 us) = 1.615 us with λ_L = 1 and feasibility lower bound 0.385 us
  // (Fig. 5 and Fig. 16 of the paper).
  const auto at500 = solver.solve(0, 500.0);
  EXPECT_DOUBLE_EQ(at500.value, 1'615.0);
  EXPECT_DOUBLE_EQ(at500.gradient[0], 1.0);
  EXPECT_NEAR(at500.lo, 385.0, 1e-6);
  EXPECT_EQ(at500.messages, 1u);

  // Below the critical latency the receiver chain dominates: λ_L = 0.
  const auto at100 = solver.solve(0, 100.0);
  EXPECT_DOUBLE_EQ(at100.value, 1'500.0);
  EXPECT_DOUBLE_EQ(at100.gradient[0], 0.0);
  EXPECT_NEAR(at100.hi, 385.0, 1e-6);

  // The single critical latency L_c = 0.385 us.
  const auto crit = solver.critical_values(0, 0.0, 1'000.0);
  ASSERT_EQ(crit.size(), 1u);
  EXPECT_NEAR(crit[0], 385.0, 1e-3);

  // Tolerance for a 2 us budget = 0.885 us (Fig. 6).
  EXPECT_NEAR(solver.max_param_for_budget(0, 2'000.0), 885.0, 1e-6);
}

TEST(RunningExample, PiecewiseSegments) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const auto segs = solver.piecewise(0, 0.0, 1'000.0);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_DOUBLE_EQ(segs[0].slope, 0.0);
  EXPECT_DOUBLE_EQ(segs[0].value_at_lo, 1'500.0);
  EXPECT_NEAR(segs[0].hi, 385.0, 1e-3);
  EXPECT_DOUBLE_EQ(segs[1].slope, 1.0);
}

TEST(Algorithm2, MatchesExactCriticalValuesOnRunningExample) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const auto exact = solver.critical_values(0, 0.0, 1'000.0);
  const auto alg2 = solver.critical_values_algorithm2(0, 0.0, 1'000.0);
  ASSERT_EQ(alg2.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(alg2[i], exact[i], 1e-3);
  }
}

TEST(Algorithm2, PaperAppendixDExample) {
  // Appendix D runs Algorithm 2 on the running example over [0.2, 0.5] us
  // with the initial bound at 0.5: two iterations find L_c = 0.385 us.
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const auto lc = solver.critical_values_algorithm2(0, 200.0, 500.0);
  ASSERT_EQ(lc.size(), 1u);
  EXPECT_NEAR(lc[0], 385.0, 1e-3);
}

TEST(Algorithm2, StepKnobSkipsFineStructure) {
  // With a step larger than the interval, at most the first basis is seen.
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const auto coarse =
      solver.critical_values_algorithm2(0, 0.0, 1'000.0, /*step=*/2'000.0);
  EXPECT_LE(coarse.size(), 1u);
  EXPECT_THROW(
      (void)solver.critical_values_algorithm2(0, 0.0, 1.0, 0.0, /*eps=*/0.0),
      LpError);
  EXPECT_THROW((void)solver.critical_values_algorithm2(0, 5.0, 1.0), LpError);
}

TEST(Tolerance, ThrowsWhenBudgetBelowBase) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  EXPECT_THROW((void)solver.max_param_for_budget(0, 1'000.0), LpError);
}

TEST(Tolerance, InfiniteWhenLatencyNeverCritical) {
  // Single-rank graph: no communication at all.
  graph::Graph g(1);
  const auto a = g.add_calc(0, 100.0);
  const auto b = g.add_calc(0, 50.0);
  g.add_local_edge(a, b);
  g.finalize();
  ParametricSolver solver(g, running_space());
  EXPECT_TRUE(std::isinf(solver.max_param_for_budget(0, 1'000.0)));
}

TEST(Tolerance, ExactAtZeroPercentBudget) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const double T0 = solver.solve(0, 0.0).value;
  // Budget exactly the base runtime: tolerance is the critical latency.
  EXPECT_NEAR(solver.max_param_for_budget(0, T0), 385.0, 1e-3);
}

TEST(Convexity, SlopeMonotoneInParameter) {
  const auto trace = llamp::testing::random_trace({});
  // (validated in depth by test_equivalence; a light check here)
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  double prev_slope = -1.0;
  for (double L = 0; L <= 2'000.0; L += 100.0) {
    const double s = solver.solve(0, L).gradient[0];
    EXPECT_GE(s, prev_slope - 1e-12);
    prev_slope = s;
  }
  (void)trace;
}

TEST(FeasibilityRange, SolutionStableInsideRange) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  const auto sol = solver.solve(0, 500.0);
  // Anywhere inside [lo, hi], slope and the linear value formula hold.
  const double mid = 0.5 * (sol.lo + std::min(sol.hi, 1'000.0));
  const auto sol2 = solver.solve(0, mid);
  EXPECT_DOUBLE_EQ(sol2.gradient[0], sol.gradient[0]);
  EXPECT_NEAR(sol2.value, sol.value + sol.gradient[0] * (mid - sol.at), 1e-9);
}

TEST(BandwidthSpace, GradientCountsBytes) {
  const auto g = llamp::testing::running_example_graph();
  const auto space = std::make_shared<LatencyBandwidthParamSpace>(
      llamp::testing::running_example_params());
  ParametricSolver solver(g, space);
  // At L = 1 us the comm path dominates; λ_G = s - 1 = 3.
  auto p = llamp::testing::running_example_params();
  (void)p;
  const auto sol = solver.solve(0, 1'000.0);
  EXPECT_DOUBLE_EQ(sol.gradient[0], 1.0);  // λ_L
  EXPECT_DOUBLE_EQ(sol.gradient[1], 3.0);  // λ_G
}

TEST(PairwiseSpace, IndexingBijective) {
  loggops::Params p;
  PairwiseLatencyParamSpace space(p, 5);
  std::vector<bool> seen(static_cast<std::size_t>(space.num_params()), false);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      const int k = space.pair_index(i, j);
      EXPECT_EQ(k, space.pair_index(j, i));
      ASSERT_GE(k, 0);
      ASSERT_LT(k, space.num_params());
      EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
      seen[static_cast<std::size_t>(k)] = true;
    }
  }
  EXPECT_THROW((void)space.pair_index(2, 2), LpError);
  EXPECT_THROW((void)space.gap_param_index(0, 1), LpError);  // no gap params
}

TEST(PairwiseSpace, GapParamsDoubleTheSpace) {
  loggops::Params p;
  PairwiseLatencyParamSpace space(p, 4, /*include_gap_params=*/true);
  EXPECT_EQ(space.num_params(), 12);
  EXPECT_EQ(space.gap_param_index(0, 1), 6 + space.pair_index(0, 1));
  EXPECT_EQ(space.param_name(0).rfind("l_", 0), 0u);
  EXPECT_EQ(space.param_name(6).rfind("G_", 0), 0u);
}

TEST(PairwiseSpace, MatrixValidation) {
  loggops::Params p;
  std::vector<double> asym(16, 1.0);
  asym[1] = 2.0;  // (0,1) != (1,0)
  EXPECT_THROW(PairwiseLatencyParamSpace(p, 4, asym, std::vector<double>(16, 0.1)),
               LpError);
  EXPECT_THROW(PairwiseLatencyParamSpace(p, 4, std::vector<double>(9, 1.0),
                                         std::vector<double>(9, 1.0)),
               LpError);
}

TEST(PairwiseSpace, GradientIdentifiesTheCriticalPair) {
  const auto g = llamp::testing::running_example_graph();
  auto p = llamp::testing::running_example_params();
  const auto space = std::make_shared<PairwiseLatencyParamSpace>(p, 2);
  ParametricSolver solver(g, space);
  const auto sol = solver.solve(space->pair_index(0, 1), 1'000.0);
  EXPECT_DOUBLE_EQ(sol.gradient[static_cast<std::size_t>(space->pair_index(0, 1))], 1.0);
}

TEST(LinkClassSpace, RouteDecomposition) {
  loggops::Params p;
  p.o = 0.0;
  // Two ranks, one class, route: 4 wires + constant 100.
  std::vector<LinkClassParamSpace::Route> routes(4);
  for (auto& r : routes) r.counts.assign(1, 0.0);
  routes[1].counts[0] = 4.0;
  routes[1].constant = 100.0;
  routes[2] = routes[1];
  LinkClassParamSpace space(p, {"l_wire"}, {250.0}, routes, 2);

  graph::Graph g(2);
  const auto s = g.add_send(0, 1, 1);
  const auto r = g.add_recv(1, 0, 1);
  g.add_comm_edge(s, r, false);
  g.finalize();
  const Affine a = space.edge_cost(g, g.edges()[0]);
  EXPECT_DOUBLE_EQ(a.constant, 100.0);
  ASSERT_EQ(a.terms.size(), 1u);
  EXPECT_DOUBLE_EQ(a.terms[0].coeff, 4.0);
}

TEST(LinkClassSpace, Validation) {
  loggops::Params p;
  EXPECT_THROW(LinkClassParamSpace(p, {"a"}, {1.0, 2.0}, {}, 0), LpError);
  std::vector<LinkClassParamSpace::Route> routes(4);
  EXPECT_THROW(LinkClassParamSpace(p, {"a"}, {1.0}, routes, 2), LpError);
}

TEST(Errors, InvalidArguments) {
  const auto g = llamp::testing::running_example_graph();
  ParametricSolver solver(g, running_space());
  EXPECT_THROW((void)solver.solve(5, 0.0), LpError);
  EXPECT_THROW((void)solver.piecewise(0, 10.0, 0.0), LpError);
  EXPECT_THROW((void)solver.max_param_for_budget(9, 1.0), LpError);
  EXPECT_THROW(ParametricSolver(g, nullptr), LpError);
  graph::Graph unfinalized(1);
  (void)unfinalized.add_calc(0, 1.0);
  EXPECT_THROW(ParametricSolver(unfinalized, running_space()), LpError);
}

}  // namespace
}  // namespace llamp::lp
