// Self-tests for llamp-lint (src/tools/lint/): the fixture corpus under
// tests/lint_fixtures/ is byte-pinned against expected.txt, and the
// tokenizer / suppression / region mechanics are unit-tested in-process.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/lint.hpp"

namespace llamp::lint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.push_back(f.rule);
  return out;
}

// ---------------------------------------------------------------------------
// The byte-pinned fixture wall: one seeded violation per rule, plus
// suppression and region-marker edge cases, diagnostics compared verbatim.
// ---------------------------------------------------------------------------

TEST(LintFixtures, TreeMatchesPinnedDiagnostics) {
  const std::vector<Finding> findings = lint_tree(LLAMP_LINT_FIXTURES);
  EXPECT_EQ(format_findings(findings),
            slurp(std::string(LLAMP_LINT_FIXTURES) + "/expected.txt"));
}

TEST(LintFixtures, EveryRuleHasASeededViolation) {
  const std::vector<Finding> findings = lint_tree(LLAMP_LINT_FIXTURES);
  for (const RuleInfo& rule : rule_catalogue()) {
    bool seen = false;
    for (const Finding& f : findings) seen = seen || f.rule == rule.id;
    EXPECT_TRUE(seen) << "no fixture violation for [" << rule.id << "]";
  }
}

TEST(LintFixtures, CliExitCodes) {
  std::string out;
  std::string err;
  const char* bad[] = {"llamp-lint", "--root", LLAMP_LINT_FIXTURES};
  EXPECT_EQ(run_cli(3, bad, out, err), 1);
  EXPECT_EQ(out, slurp(std::string(LLAMP_LINT_FIXTURES) + "/expected.txt"));

  const char* rules[] = {"llamp-lint", "--list-rules"};
  EXPECT_EQ(run_cli(2, rules, out, err), 0);
  EXPECT_NE(out.find("[det-rand]"), std::string::npos);

  const char* unknown[] = {"llamp-lint", "--frobnicate"};
  EXPECT_EQ(run_cli(2, unknown, out, err), 2);

  const char* noroot[] = {"llamp-lint", "--root", "/no/such/dir"};
  EXPECT_EQ(run_cli(3, noroot, out, err), 2);
}

// ---------------------------------------------------------------------------
// Tokenizer: comments, string/char literals, and raw strings must hide
// banned tokens; identifier boundaries must not split words.
// ---------------------------------------------------------------------------

TEST(LintScanner, LiteralsAndCommentsAreInvisible) {
  const std::string src =
      "#include <x>\n"
      "const char* a = \"rand srand std::cout\";\n"
      "// std::chrono::steady_clock::now() in a comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* b = R\"(srand(time(nullptr)))\";\n"
      "char c = 'r';\n";
  EXPECT_TRUE(lint_file("src/core/x.cpp", src).empty());
}

TEST(LintScanner, IdentifierBoundaries) {
  EXPECT_TRUE(lint_file("src/core/x.cpp",
                        "int operand = renown + strand;\n")
                  .empty());
  const auto fs = lint_file("src/core/x.cpp", "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "det-rand");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(LintScanner, MultiLineBlockCommentHidesCode) {
  const std::string src = "/*\nstd::cout << rand();\n*/\nint x = 0;\n";
  EXPECT_TRUE(lint_file("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Rule scoping.
// ---------------------------------------------------------------------------

TEST(LintRules, ClockExemptions) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(rules_of(lint_file("src/core/x.cpp", src)),
            std::vector<std::string>{"det-clock"});
  EXPECT_TRUE(lint_file("bench/bench_x.cpp", src).empty());
  // util/time.hpp may read clocks (it is the sanctioned wrapper), but as a
  // header it still needs #pragma once.
  EXPECT_TRUE(
      lint_file("src/util/time.hpp", "#pragma once\nauto f() { return "
                                     "std::chrono::steady_clock::now(); }\n")
          .empty());
}

TEST(LintRules, LogicalClocksAreNotWallClocks) {
  // A method named now() on a non-clock type (trace builder's virtual
  // per-rank clock) must not trip det-clock.
  EXPECT_TRUE(
      lint_file("src/trace/b.cpp", "TimeNs t = builder.now(0);\n").empty());
  EXPECT_TRUE(lint_file("src/trace/b.cpp",
                        "TimeNs TraceBuilder::now(int rank) const {\n")
                  .empty());
  // ...but a bench-style `Clock` alias does.
  EXPECT_EQ(rules_of(lint_file("src/trace/b.cpp", "auto t = Clock::now();\n")),
            std::vector<std::string>{"det-clock"});
}

TEST(LintRules, PrintExemptions) {
  const std::string src = "void f() { std::cout << 1; }\n";
  EXPECT_EQ(rules_of(lint_file("src/core/x.cpp", src)),
            std::vector<std::string>{"hyg-iostream"});
  EXPECT_TRUE(lint_file("src/tools/cli_driver.cpp", src).empty());
  EXPECT_TRUE(lint_file("src/util/cli.cpp", src).empty());
}

TEST(LintRules, UnorderedOnlyFlagsEmitterFiles) {
  const std::string src = "#include <unordered_map>\n";
  EXPECT_TRUE(lint_file("src/schedgen/schedgen.cpp", src).empty());
  EXPECT_EQ(rules_of(lint_file("src/core/report.cpp", src)),
            std::vector<std::string>{"det-unordered"});
  EXPECT_EQ(rules_of(lint_file("src/graph/graph_io.cpp", src)),
            std::vector<std::string>{"det-unordered"});
}

TEST(LintRules, PragmaOnce) {
  EXPECT_TRUE(lint_file("src/a/b.hpp", "#pragma once\nint x;\n").empty());
  EXPECT_TRUE(
      lint_file("src/a/b.hpp", "// leading comment\n#pragma once\n").empty());
  EXPECT_EQ(rules_of(lint_file("src/a/b.hpp", "#include <x>\n")),
            std::vector<std::string>{"hyg-pragma-once"});
  EXPECT_EQ(rules_of(lint_file("src/a/b.hpp", "")),
            std::vector<std::string>{"hyg-pragma-once"});
  // Sources have no such requirement.
  EXPECT_TRUE(lint_file("src/a/b.cpp", "#include <x>\n").empty());
}

// ---------------------------------------------------------------------------
// Hot-path regions and suppressions.
// ---------------------------------------------------------------------------

TEST(LintRegions, BansApplyOnlyInsideRegions) {
  const std::string src =
      "void cold(std::vector<int>& v) { v.push_back(1); }\n"
      "// llamp-lint: hot-path begin\n"
      "void hot(std::vector<int>& v) { v.push_back(1); }\n"
      "// llamp-lint: hot-path end\n"
      "void cold2(std::vector<int>& v) { v.reserve(9); }\n";
  const auto fs = lint_file("src/lp/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-alloc");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintRegions, MetricLookupsBannedInsideRegions) {
  // By-name registration (a string-literal first argument) is the tell; a
  // pre-registered handle or a forwarded name is fine, and outside a
  // region the lookup is the supported setup-time pattern.
  const std::string src =
      "void setup(Registry& r) { h = r.counter(\"ok\"); }\n"
      "// llamp-lint: hot-path begin\n"
      "void hot(Registry& r, Counter& h) {\n"
      "  h.inc();\n"
      "  r.counter(\"bad\").inc();\n"
      "  r.gauge(\"bad\");\n"
      "  r.histogram  (\"bad\");\n"
      "  r.histogram(name);\n"
      "}\n"
      "// llamp-lint: hot-path end\n";
  const auto fs = lint_file("src/lp/x.cpp", src);
  EXPECT_EQ(rules_of(fs), (std::vector<std::string>{"hot-metric", "hot-metric",
                                                    "hot-metric"}));
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_EQ(fs[1].line, 6);
  EXPECT_EQ(fs[2].line, 7);
}

TEST(LintRegions, DesignatedFilesMustCarryARegion) {
  EXPECT_EQ(rules_of(lint_file("src/lp/parametric.cpp", "int x;\n")),
            std::vector<std::string>{"hot-region"});
  EXPECT_EQ(rules_of(lint_file("src/lp/batch.cpp", "int x;\n")),
            std::vector<std::string>{"hot-region"});
  EXPECT_EQ(rules_of(lint_file("src/stoch/mc.cpp", "int x;\n")),
            std::vector<std::string>{"hot-region"});
  EXPECT_TRUE(lint_file("src/stoch/mc.cpp",
                        "// llamp-lint: hot-path begin\n"
                        "// llamp-lint: hot-path end\n")
                  .empty());
}

TEST(LintSuppressions, ReasonedAllowSuppressesInlineAndNextLine) {
  const std::string inline_form =
      "// llamp-lint: hot-path begin\n"
      "v.push_back(1);  // llamp-lint: allow(hot-alloc): capacity reserved\n"
      "// llamp-lint: hot-path end\n";
  EXPECT_TRUE(lint_file("src/lp/x.cpp", inline_form).empty());
  const std::string own_line_form =
      "// llamp-lint: hot-path begin\n"
      "// llamp-lint: allow(hot-alloc): capacity reserved, and this\n"
      "// comment wraps across two lines before the code.\n"
      "v.push_back(1);\n"
      "// llamp-lint: hot-path end\n";
  EXPECT_TRUE(lint_file("src/lp/x.cpp", own_line_form).empty());
}

TEST(LintSuppressions, ReasonlessUnknownAndStaleAllowsSurface) {
  const auto reasonless = lint_file(
      "src/lp/x.cpp",
      "// llamp-lint: hot-path begin\n"
      "v.push_back(1);  // llamp-lint: allow(hot-alloc)\n"
      "// llamp-lint: hot-path end\n");
  EXPECT_EQ(rules_of(reasonless),
            (std::vector<std::string>{"hot-alloc", "lint-suppression"}));
  const auto unknown = lint_file(
      "src/core/x.cpp", "int a;  // llamp-lint: allow(bogus): reason\n");
  EXPECT_EQ(rules_of(unknown), std::vector<std::string>{"lint-suppression"});
  const auto stale = lint_file(
      "src/core/x.cpp", "int a;  // llamp-lint: allow(det-rand): stale\n");
  EXPECT_EQ(rules_of(stale), std::vector<std::string>{"lint-suppression"});
}

TEST(LintSuppressions, AllowCannotSuppressTheSuppressor) {
  const auto fs = lint_file(
      "src/core/x.cpp",
      "int a;  // llamp-lint: allow(lint-suppression): nice try\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lint-suppression");
  EXPECT_NE(fs[0].message.find("unknown rule id"), std::string::npos);
}

TEST(LintFormat, DiagnosticShape) {
  const std::vector<Finding> fs = {{"src/a.cpp", 7, "det-rand", "msg"}};
  EXPECT_EQ(format_findings(fs), "src/a.cpp:7: [det-rand] msg\n");
}

}  // namespace
}  // namespace llamp::lint
