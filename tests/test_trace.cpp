#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <type_traits>

#include "trace/builder.hpp"
#include "trace/trace.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"

namespace llamp::trace {
namespace {

TEST(OpNames, RoundTrip) {
  for (const Op op :
       {Op::kInit, Op::kFinalize, Op::kSend, Op::kRecv, Op::kIsend,
        Op::kIrecv, Op::kWait, Op::kBarrier, Op::kBcast, Op::kReduce,
        Op::kAllreduce, Op::kAllgather, Op::kReduceScatter, Op::kGather,
        Op::kScatter, Op::kAlltoall}) {
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_THROW((void)op_from_name("MPI_Bogus"), TraceError);
}

TEST(OpClassification, Collectives) {
  EXPECT_TRUE(is_collective(Op::kAllreduce));
  EXPECT_TRUE(is_collective(Op::kBarrier));
  EXPECT_FALSE(is_collective(Op::kSend));
  EXPECT_TRUE(is_send(Op::kIsend));
  EXPECT_TRUE(is_recv(Op::kRecv));
  EXPECT_FALSE(is_recv(Op::kWait));
}

TEST(Builder, ProducesValidTrace) {
  TraceBuilder tb(2);
  tb.compute(0, 1000.0);
  tb.send(0, 1, 256, 5);
  tb.recv(1, 0, 256, 5);
  tb.allreduce_all(8);
  const Trace t = tb.finish();
  EXPECT_EQ(t.nranks(), 2);
  // Init + send + allreduce + finalize on rank 0.
  EXPECT_EQ(t.rank(0).size(), 4u);
  EXPECT_EQ(t.rank(0)[1].op, Op::kSend);
  EXPECT_EQ(t.rank(0)[1].peer, 1);
  EXPECT_EQ(t.rank(0)[1].bytes, 256u);
  EXPECT_EQ(t.rank(0)[1].tag, 5);
}

TEST(Builder, ComputeAdvancesClock) {
  TraceBuilder tb(1, /*op_duration=*/100.0);
  const TimeNs after_init = tb.now(0);
  tb.compute(0, 5'000.0);
  EXPECT_DOUBLE_EQ(tb.now(0), after_init + 5'000.0);
}

TEST(Builder, RequestsMatchWaits) {
  TraceBuilder tb(2);
  const auto r1 = tb.irecv(1, 0, 64, 0);
  const auto s1 = tb.isend(0, 1, 64, 0);
  tb.wait(1, r1);
  tb.wait(0, s1);
  EXPECT_NO_THROW(tb.finish());
}

TEST(Builder, Errors) {
  EXPECT_THROW(TraceBuilder(0), TraceError);
  TraceBuilder tb(2);
  EXPECT_THROW(tb.compute(0, -1.0), TraceError);
  EXPECT_THROW(tb.collective(0, Op::kSend, 8), TraceError);
  tb.finish();
  EXPECT_THROW(tb.compute(0, 1.0), TraceError);
  EXPECT_THROW(tb.finish(), TraceError);
}

TEST(Validation, CatchesUnwaitedRequest) {
  TraceBuilder tb(2);
  (void)tb.isend(0, 1, 8, 0);
  tb.recv(1, 0, 8, 0);
  EXPECT_THROW(tb.finish(), TraceError);
}

TEST(Validation, CatchesOverlappingTimestamps) {
  Trace t(1);
  Event a;
  a.op = Op::kInit;
  a.start = 0;
  a.end = 10;
  Event b;
  b.op = Op::kFinalize;
  b.start = 5;  // overlaps a
  b.end = 20;
  t.rank(0) = {a, b};
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(Validation, CatchesSelfMessage) {
  Trace t(2);
  Event e;
  e.op = Op::kSend;
  e.peer = 0;  // self
  e.start = 0;
  e.end = 1;
  t.rank(0) = {e};
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(Validation, CatchesPeerOutOfRange) {
  Trace t(2);
  Event e;
  e.op = Op::kRecv;
  e.peer = 7;
  t.rank(0) = {e};
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(Validation, CatchesCollectiveDivergence) {
  TraceBuilder tb(2);
  tb.collective(0, Op::kAllreduce, 8);
  tb.collective(1, Op::kAllreduce, 16);  // different payload
  EXPECT_THROW(tb.finish(), TraceError);
}

TEST(Validation, CatchesDuplicateRequest) {
  Trace t(2);
  Event a;
  a.op = Op::kIrecv;
  a.peer = 1;
  a.request = 3;
  a.start = 0;
  a.end = 1;
  Event b = a;
  b.start = 2;
  b.end = 3;
  Event w;
  w.op = Op::kWait;
  w.request = 3;
  w.start = 4;
  w.end = 5;
  t.rank(0) = {a, b, w};
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(TraceIo, RoundTrip) {
  TraceBuilder tb(3);
  tb.compute(0, 1234.5);
  const auto req = tb.irecv(1, 0, 4096, 9);
  tb.send(0, 1, 4096, 9);
  tb.wait(1, req);
  tb.bcast_all(64, 2);
  const Trace t = tb.finish();
  const Trace parsed = from_text(to_text(t));
  EXPECT_EQ(parsed, t);
}

TEST(TraceIo, RejectsBadMagic) {
  EXPECT_THROW((void)from_text("NOT_A_TRACE 1\n"), TraceError);
  EXPECT_THROW((void)from_text(""), TraceError);
  EXPECT_THROW((void)from_text("LLAMP_TRACE 999\nranks 1\n"), TraceError);
}

TEST(TraceIo, RejectsMalformedBody) {
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks 1\nMPI_Send:1:2\n"),
               TraceError);
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks 2\nrank 1\n"),
               TraceError);  // ranks out of order
  EXPECT_THROW(
      (void)from_text("LLAMP_TRACE 1\nranks 1\nMPI_Init:0:1:-1:0:0:0:-1\n"),
      TraceError);  // event before rank header
}

TEST(TraceIo, GarbageFieldsAreLineNumberedTraceErrors) {
  // Numeric garbage in any field must raise a TraceError naming the line,
  // never the shared parsers' location-free Error (and never a crash).
  const auto expect_line_error = [](const std::string& body,
                                    const std::string& needle) {
    const std::string text = "LLAMP_TRACE 1\nranks 1\nrank 0\n" + body;
    try {
      (void)from_text(text);
      FAIL() << "accepted: " << body;
    } catch (const TraceError& e) {
      EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_line_error("MPI_Send:abc:1:0:0:8:0:-1\n", "start time");
  expect_line_error("MPI_Send:0:xyz:0:0:8:0:-1\n", "end time");
  expect_line_error("MPI_Send:0:1:frog:0:8:0:-1\n", "peer");
  expect_line_error("MPI_Send:0:1:0:?:8:0:-1\n", "tag");
  expect_line_error("MPI_Send:0:1:0:0:many:0:-1\n", "byte count");
  expect_line_error("MPI_Send:0:1:0:0:-8:0:-1\n", "negative byte count");
  expect_line_error("MPI_Send:0:1:0:0:8:root:-1\n", "root");
  expect_line_error("MPI_Send:0:1:0:0:8:0:oops\n", "request");
  expect_line_error("MPI_Send:inf:1:0:0:8:0:-1\n", "start time");
  expect_line_error("MPI_Send:nan:1:0:0:8:0:-1\n", "start time");
  expect_line_error("MPI_Frobnicate:0:1:0:0:8:0:-1\n", "unknown operation");
  expect_line_error("MPI_Send:0:1:7:0:8:0:-1\n", "peer 7 out of range");
  expect_line_error("MPI_Bcast:0:1:-1:0:8:7:-1\n", "root 7 out of range");
  expect_line_error("MPI_Bcast:0:1:-1:0:8:-2:-1\n", "root -2 out of range");
}

TEST(TraceIo, GarbageHeadersAreTraceErrors) {
  EXPECT_THROW((void)from_text("LLAMP_TRACE abc\nranks 1\nrank 0\n"),
               TraceError);  // non-numeric version
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks many\nrank 0\n"),
               TraceError);  // non-numeric rank count
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks 2\nrank zero\n"),
               TraceError);  // non-numeric rank header
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks 0\n"), TraceError);
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks -3\n"), TraceError);
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\n"), TraceError);
}

TEST(TraceIo, EarlyEofIsTruncationNotSilentShrink) {
  // A file cut off between rank sections must not parse as a smaller job:
  // before the hardening this "succeeded" with empty ranks and analyses
  // quietly ran on a fraction of the trace.
  try {
    (void)from_text("LLAMP_TRACE 1\nranks 4\nrank 0\n"
                    "MPI_Init:0:1:-1:0:0:0:-1\nrank 1\n");
    FAIL() << "accepted a truncated trace";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("2 of 4"), std::string::npos)
        << e.what();
  }
  // The declared rank count alone, with no sections at all, is truncation
  // too.
  EXPECT_THROW((void)from_text("LLAMP_TRACE 1\nranks 2\n"), TraceError);
}

TEST(TraceIo, TraceErrorsAreUsageErrors) {
  // Malformed traces are user input: every CLI maps UsageError to exit 2,
  // and TraceError must ride that path.
  static_assert(std::is_base_of_v<UsageError, TraceError>);
  try {
    (void)from_text("garbage\n");
    FAIL();
  } catch (const UsageError&) {
    // Caught through the UsageError base — the property the exit-code
    // mapping relies on.
  }
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const auto t = from_text(
      "LLAMP_TRACE 1\nranks 1\nrank 0\n# a comment\n\n"
      "MPI_Init:0.000:1.000:-1:0:0:0:-1\n");
  EXPECT_EQ(t.rank(0).size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  TraceBuilder tb(2);
  tb.send(0, 1, 8, 0);
  tb.recv(1, 0, 8, 0);
  const Trace t = tb.finish();
  const std::string path = ::testing::TempDir() + "/llamp_trace_test.txt";
  save_trace(path, t);
  EXPECT_EQ(load_trace(path), t);
  EXPECT_THROW((void)load_trace("/nonexistent/path/x.txt"), Error);
}

TEST(Profile, CountsAndMatrix) {
  TraceBuilder tb(3, /*op_duration=*/10.0);
  tb.compute(0, 100.0);
  tb.send(0, 1, 1024, 0);
  tb.recv(1, 0, 1024, 0);
  const auto req = tb.irecv(2, 0, 16, 1);
  const auto sreq = tb.isend(0, 2, 16, 1);
  tb.wait(2, req);
  tb.wait(0, sreq);
  tb.allreduce_all(8);
  const auto prof = profile_trace(tb.finish());
  EXPECT_EQ(prof.nranks, 3);
  EXPECT_EQ(prof.p2p_messages, 2u);
  EXPECT_EQ(prof.p2p_bytes, 1040u);
  EXPECT_EQ(prof.max_message_bytes, 1024u);
  EXPECT_DOUBLE_EQ(prof.avg_message_bytes, 520.0);
  EXPECT_EQ(prof.collective_calls, 3u);  // one allreduce seen by 3 ranks
  EXPECT_EQ(prof.bytes_between(0, 1), 1024u);
  EXPECT_EQ(prof.bytes_between(0, 2), 16u);
  EXPECT_EQ(prof.bytes_between(1, 0), 0u);  // directed
  EXPECT_DOUBLE_EQ(prof.total_gap_time, 100.0);  // the one compute gap
  EXPECT_EQ(prof.op_counts.at(Op::kSend), 1u);
  EXPECT_EQ(prof.op_counts.at(Op::kAllreduce), 3u);
  // 1024 lands in the [1k, 2k) bucket, 16 in [16, 32).
  EXPECT_EQ(prof.size_histogram[10], 1u);
  EXPECT_EQ(prof.size_histogram[4], 1u);
  const auto text = prof.to_string();
  EXPECT_NE(text.find("3 ranks"), std::string::npos);
  EXPECT_NE(text.find("MPI_Allreduce=3"), std::string::npos);
}

TEST(Profile, EmptyMessagesAndSpan) {
  TraceBuilder tb(2, /*op_duration=*/5.0);
  tb.send(0, 1, 0, 0);
  tb.recv(1, 0, 0, 0);
  const auto prof = profile_trace(tb.finish());
  EXPECT_EQ(prof.p2p_messages, 1u);
  EXPECT_EQ(prof.p2p_bytes, 0u);
  EXPECT_DOUBLE_EQ(prof.avg_message_bytes, 0.0);
  EXPECT_EQ(prof.size_histogram[0], 1u);
  EXPECT_GT(prof.span, 0.0);
  EXPECT_GT(prof.total_mpi_time, 0.0);
}

}  // namespace
}  // namespace llamp::trace
