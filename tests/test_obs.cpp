// Tests for the observability layer (src/obs/): registry merge
// determinism across shard counts, histogram bucket edges and quantile
// sketches, the shared stats_line format, Chrome trace emission, and the
// engine-level guarantees — deterministic counters for a fixed request
// sequence, and byte-identical results with metrics/tracing on or off.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tools/cli_driver.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace llamp {
namespace {

// ---------------------------------------------------------------------------
// Registry: merged snapshots are shard-count and thread-count independent.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, MergeDeterminismAcrossShardCounts) {
  for (const int shards : {1, 3, 8}) {
    obs::Registry reg(obs::Registry::Options{.shards = shards});
    obs::Counter c = reg.counter("work.items");
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&c] {
        for (int i = 0; i < 1000; ++i) c.inc();
      });
    }
    for (std::thread& t : threads) t.join();
    c.inc(42);  // bulk add folds into the same merged total
    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u) << "shards=" << shards;
    EXPECT_EQ(snap.counters[0].first, "work.items");
    EXPECT_EQ(snap.counters[0].second, 8u * 1000u + 42u)
        << "shards=" << shards;
  }
}

TEST(ObsRegistry, HistogramCountMergesExactlyAcrossThreads) {
  for (const int shards : {1, 4}) {
    obs::Registry reg(obs::Registry::Options{.shards = shards});
    obs::Histogram h = reg.histogram("latency");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&h, t] {
        for (int i = 0; i < 500; ++i) h.record(static_cast<double>(t + 1));
      });
    }
    for (std::thread& t : threads) t.join();
    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const obs::HistogramSnapshot& hs = snap.histograms[0];
    EXPECT_EQ(hs.count, 4u * 500u) << "shards=" << shards;
    EXPECT_EQ(hs.min, 1.0);
    EXPECT_EQ(hs.max, 4.0);
    EXPECT_EQ(hs.sum, 500.0 * (1 + 2 + 3 + 4));
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : hs.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, hs.count);
  }
}

TEST(ObsRegistry, SameNameReturnsSameCell) {
  obs::Registry reg;
  obs::Counter a = reg.counter("x");
  obs::Counter b = reg.counter("x");
  a.inc();
  b.inc(2);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 3u);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreSafeNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(1.0);
  g.add(2.0);
  h.record(3.0);  // must not crash
}

// ---------------------------------------------------------------------------
// Histogram buckets: log₂ spacing with exact power-of-two edges.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketEdges) {
  using obs::detail::histogram_bucket;
  using obs::detail::kHistogramBuckets;
  // Bucket 0 holds v <= 1 (and everything non-positive).
  EXPECT_EQ(histogram_bucket(-5.0), 0u);
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(0.5), 0u);
  EXPECT_EQ(histogram_bucket(1.0), 0u);
  // Bucket b holds [2^(b-1), 2^b): the lower edge is inclusive.
  EXPECT_EQ(histogram_bucket(1.5), 1u);
  EXPECT_EQ(histogram_bucket(2.0), 2u);
  EXPECT_EQ(histogram_bucket(3.999), 2u);
  EXPECT_EQ(histogram_bucket(4.0), 3u);
  EXPECT_EQ(histogram_bucket(1024.0), 11u);
  EXPECT_EQ(histogram_bucket(1023.999), 10u);
  // The last bucket absorbs overflow.
  EXPECT_EQ(histogram_bucket(1e30), kHistogramBuckets - 1);
}

TEST(ObsHistogram, SingleShardQuantilesAreP2Exact) {
  // With one populated shard the snapshot reports the P² sketches, which
  // are exact R-7 percentiles while the stream holds <= 5 observations.
  obs::Registry reg(obs::Registry::Options{.shards = 4});
  obs::Histogram h = reg.histogram("lat");
  const std::vector<double> xs = {10.0, 50.0, 30.0, 20.0, 40.0};
  for (const double v : xs) h.record(v);
  const obs::HistogramSnapshot& hs = reg.snapshot().histograms[0];
  EXPECT_DOUBLE_EQ(hs.p50, percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(hs.p95, percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(hs.p99, percentile(xs, 99.0));
}

TEST(ObsHistogram, NonfiniteObservationsAreCountedSeparately) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("lat");
  h.record(5.0);
  h.record(std::numeric_limits<double>::infinity());
  h.record(std::numeric_limits<double>::quiet_NaN());
  const obs::HistogramSnapshot& hs = reg.snapshot().histograms[0];
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.nonfinite, 2u);
  EXPECT_EQ(hs.sum, 5.0);
  EXPECT_EQ(hs.max, 5.0);
}

// ---------------------------------------------------------------------------
// Snapshot: ordering, imports, and the canonical JSON form.
// ---------------------------------------------------------------------------

TEST(ObsSnapshot, SetCounterKeepsNameOrderAndAssigns) {
  obs::Snapshot snap;
  snap.set_counter("b", 1);
  snap.set_counter("a", 2);
  snap.set_gauge("z", 3.0);
  snap.set_gauge("y", 4.0);
  snap.set_counter("b", 5);  // re-set assigns, no duplicate
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counters[1].second, 5u);
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "y");
  EXPECT_EQ(snap.gauges[1].first, "z");
}

TEST(ObsSnapshot, JsonParsesAndCarriesSchemaVersion) {
  obs::Registry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(2.5);
  reg.histogram("h").record(100.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single line";
  const JsonValue doc = JsonValue::parse(json);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema_version"), nullptr);
  EXPECT_EQ(doc.find("schema_version")->as_number("schema_version"), 1.0);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("c")->as_number("c"), 7.0);
  const JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number("count"), 1.0);
}

TEST(ObsStatsLine, SharedCacheLineFormat) {
  EXPECT_EQ(obs::stats_line("graphs", {{"built", 2}, {"hits", 11}}),
            "graphs: built=2 hits=11");
  EXPECT_EQ(obs::stats_line("empty", {}), "empty:");
}

// ---------------------------------------------------------------------------
// Tracer: span recording and the Chrome trace-event emission.
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  { const obs::SpanScope s(tracer, "op"); }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ObsTrace, NestedSpansCarryParentIndices) {
  obs::Tracer tracer;
  tracer.enable();
  {
    const obs::SpanScope outer(tracer, "outer");
    { const obs::SpanScope inner(tracer, "inner"); }
  }
  { const obs::SpanScope root2(tracer, "root2"); }
  tracer.disable();
  EXPECT_EQ(tracer.span_count(), 3u);

  const JsonValue doc = JsonValue::parse(tracer.to_chrome_json());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const auto& arr = events->as_array("traceEvents");
  ASSERT_EQ(arr.size(), 3u);
  // Lane emission order is recording order: outer, inner, root2.
  EXPECT_EQ(arr[0].find("name")->as_string("name"), "outer");
  EXPECT_EQ(arr[0].find("ph")->as_string("ph"), "X");
  EXPECT_EQ(arr[0].find("args")->find("parent")->as_number("parent"), -1.0);
  EXPECT_EQ(arr[1].find("name")->as_string("name"), "inner");
  EXPECT_EQ(arr[1].find("args")->find("parent")->as_number("parent"), 0.0);
  EXPECT_EQ(arr[2].find("args")->find("parent")->as_number("parent"), -1.0);
  // The inner span nests inside the outer one in time as well.
  const double outer_ts = arr[0].find("ts")->as_number("ts");
  const double outer_dur = arr[0].find("dur")->as_number("dur");
  const double inner_ts = arr[1].find("ts")->as_number("ts");
  const double inner_dur = arr[1].find("dur")->as_number("dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-9);
}

TEST(ObsTrace, ClearDropsSpans) {
  obs::Tracer tracer;
  tracer.enable();
  { const obs::SpanScope s(tracer, "op"); }
  EXPECT_EQ(tracer.span_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  const JsonValue doc = JsonValue::parse(tracer.to_chrome_json());
  EXPECT_TRUE(doc.find("traceEvents")->as_array("traceEvents").empty());
}

// ---------------------------------------------------------------------------
// Engine: deterministic counters for a fixed request sequence, and the
// byte-identity wall — observability must never change result bytes.
// ---------------------------------------------------------------------------

api::AnalyzeRequest small_analyze() {
  api::AnalyzeRequest req;
  req.app.app = "lulesh";
  req.app.ranks = 8;
  req.app.scale = 0.05;
  req.grid = {20.0, 3};
  return req;
}

std::uint64_t counter_of(const std::string& metrics_json,
                         const std::string& name) {
  const JsonValue doc = JsonValue::parse(metrics_json);
  const JsonValue* counters = doc.find("counters");
  EXPECT_NE(counters, nullptr);
  const JsonValue* v = counters->find(name);
  EXPECT_NE(v, nullptr) << "missing counter " << name;
  return v == nullptr ? 0 : v->as_unsigned(name);
}

TEST(ObsEngine, CountersAreDeterministicAcrossSessions) {
  const auto run_session = [](int threads) {
    api::Engine engine(api::Engine::Options{.threads = threads});
    (void)engine.analyze(small_analyze());
    (void)engine.analyze(small_analyze());  // same scenario: cache hit
    return engine.metrics_json();
  };
  const std::string a = run_session(1);
  const std::string b = run_session(4);
  for (const char* name :
       {"engine.requests", "engine.errors", "engine.op.analyze",
        "graph_cache.built", "graph_cache.hits", "solver_cache.built"}) {
    EXPECT_EQ(counter_of(a, name), counter_of(b, name)) << name;
  }
  EXPECT_EQ(counter_of(a, "engine.requests"), 2u);
  EXPECT_EQ(counter_of(a, "engine.errors"), 0u);
  EXPECT_EQ(counter_of(a, "engine.op.analyze"), 2u);
  EXPECT_EQ(counter_of(a, "graph_cache.built"), 1u);
  EXPECT_EQ(counter_of(a, "graph_cache.hits"), 1u);
}

TEST(ObsEngine, SnapshotCarriesUptimeAndScrapeSequence) {
  api::Engine engine(api::Engine::Options{.threads = 1});
  const std::string first = engine.metrics_json();
  const std::string second = engine.metrics_json();
  // The scrape sequence is monotonic from 1 within a session, so /metrics
  // consumers can order snapshots and detect a daemon restart.
  EXPECT_EQ(counter_of(first, "engine.metrics_seq"), 1u);
  EXPECT_EQ(counter_of(second, "engine.metrics_seq"), 2u);
  // Uptime is a gauge (timing value, never result bytes) and grows.
  const auto uptime_of = [](const std::string& json) {
    const JsonValue doc = JsonValue::parse(json);
    const JsonValue* v = doc.find("gauges")->find("engine.uptime_ns");
    EXPECT_NE(v, nullptr);
    return v == nullptr ? 0.0 : v->as_number("engine.uptime_ns");
  };
  EXPECT_GT(uptime_of(first), 0.0);
  EXPECT_GE(uptime_of(second), uptime_of(first));
  EXPECT_GE(static_cast<double>(engine.uptime_ns()), uptime_of(second));
}

TEST(ObsEngine, ErrorsAreCountedAndRethrown) {
  api::Engine engine(api::Engine::Options{.threads = 1});
  api::AnalyzeRequest bad = small_analyze();
  bad.app.app = "no-such-app";
  EXPECT_THROW((void)engine.analyze(bad), Error);
  const std::string json = engine.metrics_json();
  EXPECT_EQ(counter_of(json, "engine.requests"), 1u);
  EXPECT_EQ(counter_of(json, "engine.errors"), 1u);
}

TEST(ObsEngine, TracingDoesNotChangeResultBytes) {
  const api::AnalyzeRequest req = small_analyze();
  api::Engine plain(api::Engine::Options{.threads = 1});
  api::Engine traced(api::Engine::Options{.threads = 1});
  traced.tracer().enable();
  const std::string a = plain.analyze(req).to_json_line();
  const std::string b = traced.analyze(req).to_json_line();
  EXPECT_EQ(a, b);
  EXPECT_GT(traced.trace_json().size(), plain.trace_json().size());
}

// ---------------------------------------------------------------------------
// CLI: --trace-out leaves stdout bytes untouched and writes parseable
// Chrome JSON; `llamp stats` emits the snapshot.
// ---------------------------------------------------------------------------

struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "llamp");
  std::ostringstream out, err;
  CliResult r;
  r.code = tools::run(static_cast<int>(args.size()), args.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

TEST(ObsCli, TraceOutPreservesStdoutBytes) {
  const std::vector<const char*> base = {"mc",           "--app=lulesh",
                                         "--ranks=8",    "--scale=0.05",
                                         "--samples=16", "--seed=3"};
  const CliResult plain = run_cli(base);
  ASSERT_EQ(plain.code, 0) << plain.err;

  const std::string trace_path = "test_obs_trace_out.json";
  std::vector<const char*> traced = base;
  const std::string flag = "--trace-out=" + trace_path;
  traced.push_back(flag.c_str());
  const CliResult with_trace = run_cli(traced);
  ASSERT_EQ(with_trace.code, 0) << with_trace.err;

  EXPECT_EQ(plain.out, with_trace.out);  // byte identity, not similarity

  const std::string trace = slurp(trace_path);
  std::remove(trace_path.c_str());
  ASSERT_FALSE(trace.empty());
  const JsonValue doc = JsonValue::parse(trace);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->as_array("traceEvents").empty());
}

TEST(ObsCli, StatsSubcommandEmitsSnapshot) {
  const CliResult table = run_cli({"stats"});
  EXPECT_EQ(table.code, 0) << table.err;
  EXPECT_NE(table.out.find("engine.requests"), std::string::npos);

  const CliResult json = run_cli({"stats", "--format=json"});
  EXPECT_EQ(json.code, 0) << json.err;
  const JsonValue doc = JsonValue::parse(json.out);
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("counters"), nullptr);

  const CliResult csv = run_cli({"stats", "--csv"});
  EXPECT_EQ(csv.code, 2);  // csv is not offered for the snapshot
}

TEST(ObsCli, BatchMetricsFlagGoesToStderrOnly) {
  const std::string request_path = "test_obs_batch_req.jsonl";
  {
    std::ofstream req(request_path);
    req << R"({"op": "analyze", "app": {"name": "lulesh", "ranks": 8}})"
        << '\n';
  }
  const CliResult plain =
      run_cli({"batch", "--file", request_path.c_str()});
  const CliResult with_metrics =
      run_cli({"batch", "--file", request_path.c_str(), "--metrics"});
  std::remove(request_path.c_str());
  ASSERT_EQ(plain.code, 0) << plain.err;
  ASSERT_EQ(with_metrics.code, 0) << with_metrics.err;
  EXPECT_EQ(plain.out, with_metrics.out);  // responses are byte-identical
  EXPECT_NE(with_metrics.err.find("engine.requests"), std::string::npos);
  EXPECT_NE(with_metrics.err.find("batch.requests"), std::string::npos);
}

}  // namespace
}  // namespace llamp
