#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"

namespace llamp::lp {
namespace {

TEST(ModelBuilding, DedupAndValidation) {
  Model m;
  const int x = m.add_var("x", 0, 10);
  const int row = m.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::kLe, 6.0);
  EXPECT_EQ(m.row(row).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(row).terms[0].second, 3.0);
  EXPECT_THROW((void)m.add_constraint({{99, 1.0}}, Relation::kLe, 0.0),
               LpError);
  EXPECT_THROW((void)m.add_var("bad", 5.0, 1.0), LpError);
  EXPECT_THROW(m.set_var_lower(x, 20.0), LpError);
  EXPECT_NE(m.to_string().find("Minimize"), std::string::npos);
}

TEST(Basic, TwoVarMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_var("x", 0, kInf, 3.0);
  const int y = m.add_var("y", 0, kInf, 2.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLe, 4);
  m.add_constraint({{x, 1}, {y, 3}}, Relation::kLe, 6);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 4.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 0.0, 1e-9);
}

TEST(Basic, Minimization) {
  // min x + 2y s.t. x + y >= 3, y >= 1 -> (2, 1), obj 4.
  Model m;
  const int x = m.add_var("x", 0, kInf, 1.0);
  const int y = m.add_var("y", 0, kInf, 2.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kGe, 3);
  m.add_constraint({{y, 1}}, Relation::kGe, 1);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-9);
}

TEST(Basic, EqualityConstraints) {
  // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1.
  Model m;
  const int x = m.add_var("x", -kInf, kInf, 1.0);
  const int y = m.add_var("y", -kInf, kInf, 1.0);
  m.add_constraint({{x, 1}, {y, 2}}, Relation::kEq, 4);
  m.add_constraint({{x, 1}, {y, -1}}, Relation::kEq, 1);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Basic, FreeVariables) {
  // min y s.t. y >= x - 2, y >= -x, x free -> x = 1, y = -1.
  Model m;
  const int x = m.add_var("x", -kInf, kInf, 0.0);
  const int y = m.add_var("y", -kInf, kInf, 1.0);
  m.add_constraint({{y, 1}, {x, -1}}, Relation::kGe, -2);
  m.add_constraint({{y, 1}, {x, 1}}, Relation::kGe, 0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Statuses, Infeasible) {
  Model m;
  const int x = m.add_var("x", 0, kInf, 1.0);
  m.add_constraint({{x, 1}}, Relation::kLe, 1);
  m.add_constraint({{x, 1}}, Relation::kGe, 2);
  EXPECT_EQ(SimplexSolver{}.solve(m).status, SolveStatus::kInfeasible);
}

TEST(Statuses, Unbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_var("x", 0, kInf, 1.0);
  m.add_constraint({{x, -1}}, Relation::kLe, 0);
  EXPECT_EQ(SimplexSolver{}.solve(m).status, SolveStatus::kUnbounded);
}

TEST(Statuses, EmptyFeasibleAtBounds) {
  // No constraints: optimum at variable bounds.
  Model m;
  m.set_sense(Sense::kMaximize);
  (void)m.add_var("x", 1.0, 5.0, 2.0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
}

TEST(BoundedVariables, BoundFlips) {
  // max x + y with 0 <= x <= 1, 0 <= y <= 2, x + y <= 2.5.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_var("x", 0, 1, 1.0);
  const int y = m.add_var("y", 0, 2, 1.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLe, 2.5);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-9);
}

TEST(Degeneracy, RedundantConstraintsStillSolve) {
  Model m;
  const int x = m.add_var("x", 0, kInf, 1.0);
  for (int i = 0; i < 20; ++i) {
    m.add_constraint({{x, 1}}, Relation::kGe, 5.0);  // same constraint 20x
  }
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Sensitivity, ReducedCostOfLowerBoundedVariable) {
  // min t s.t. t >= l + 10, l >= 5: t = 15; dT/dl = 1 at the bound.
  Model m;
  const int l = m.add_var("l", 5.0, kInf, 0.0);
  const int t = m.add_var("t", -kInf, kInf, 1.0);
  m.add_constraint({{t, 1}, {l, -1}}, Relation::kGe, 10.0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 15.0, 1e-9);
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(l)], 1.0, 1e-9);
  EXPECT_FALSE(s.basic[static_cast<std::size_t>(l)]);
}

TEST(Sensitivity, DualsOfTightRows) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1: optimum (4, 0)... x has the
  // cheaper cost, so x = 4, y = 0; row 1 dual = 2, row 2 slack.
  Model m;
  const int x = m.add_var("x", 0, kInf, 2.0);
  const int y = m.add_var("y", 0, kInf, 3.0);
  const int r1 = m.add_constraint({{x, 1}, {y, 1}}, Relation::kGe, 4.0);
  const int r2 = m.add_constraint({{x, 1}}, Relation::kGe, 1.0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_TRUE(s.tight(m, r1));
  EXPECT_FALSE(s.tight(m, r2));
  EXPECT_NEAR(s.dual[static_cast<std::size_t>(r1)], 2.0, 1e-9);
  EXPECT_NEAR(s.dual[static_cast<std::size_t>(r2)], 0.0, 1e-9);
}

TEST(Ranging, NonbasicVariableFeasibilityInterval) {
  // min t s.t. t >= l + 1, t >= 10, l >= 2.
  // l nonbasic at 2; it can rise to 9 before the second constraint stops
  // binding the optimum (basis change), and fall without limit... the
  // movement interval is bounded below by l's own influence: the basis
  // stays primal feasible for l in (-inf, 9].
  Model m;
  const int l = m.add_var("l", 2.0, kInf, 0.0);
  const int t = m.add_var("t", -kInf, kInf, 1.0);
  m.add_constraint({{t, 1}, {l, -1}}, Relation::kGe, 1.0);
  m.add_constraint({{t, 1}}, Relation::kGe, 10.0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(l)], 0.0, 1e-9);
  const auto range = SimplexSolver{}.bound_range(m, s, l);
  EXPECT_NEAR(range.hi, 9.0, 1e-6);
}

TEST(Ranging, RequiresOptimalSolution) {
  Model m;
  const int x = m.add_var("x", 0, kInf, 1.0);
  m.add_constraint({{x, 1}}, Relation::kLe, 1);
  m.add_constraint({{x, 1}}, Relation::kGe, 2);
  const Solution s = SimplexSolver{}.solve(m);
  EXPECT_THROW((void)SimplexSolver{}.bound_range(m, s, x), LpError);
}

TEST(IterationLimit, Reported) {
  SimplexSolver::Config cfg;
  cfg.max_iterations = 0;
  Model m;
  const int x = m.add_var("x", 0, kInf, 1.0);
  m.add_constraint({{x, 1}}, Relation::kGe, 5.0);
  EXPECT_EQ(SimplexSolver{cfg}.solve(m).status,
            SolveStatus::kIterationLimit);
}

TEST(Orientation, MaxReportsPositiveDualConvention) {
  // max l s.t. l <= 7: reduced cost in max orientation should be the rate
  // of objective change per unit of bound increase.
  Model m;
  m.set_sense(Sense::kMaximize);
  (void)m.add_var("l", 0.0, 7.0, 1.0);
  const Solution s = SimplexSolver{}.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
}

}  // namespace
}  // namespace llamp::lp
