#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "api/request.hpp"
#include "core/report.hpp"
#include "tools/cli_driver.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace llamp {
namespace {

// ---------------------------------------------------------------------------
// JSON round trip: serialize → parse → serialize must be byte-identical for
// every request type, and the parsed request must execute identically.
// ---------------------------------------------------------------------------

void expect_round_trip(const api::Request& req) {
  const std::string json = api::to_json(req);
  const api::Request parsed = api::parse_request(json);
  EXPECT_EQ(api::to_json(parsed), json) << json;
  EXPECT_EQ(req.index(), parsed.index());
  EXPECT_STREQ(api::op_name(req), api::op_name(parsed));
}

api::AppSpec fancy_app() {
  api::AppSpec app;
  app.app = "hpcg";
  app.ranks = 27;
  app.scale = 0.05;
  app.net = "daint";
  app.L = 2500.0;
  app.o = 4321.5;
  app.G = 0.021;
  app.S = 1024;
  return app;
}

TEST(ApiRequestJson, AnalyzeRoundTrip) {
  api::AnalyzeRequest req;
  expect_round_trip(req);  // all defaults
  req.app = fancy_app();
  req.grid = {42.5, 7};
  req.threads = 3;
  expect_round_trip(req);
}

TEST(ApiRequestJson, SweepRoundTrip) {
  api::SweepRequest req;
  expect_round_trip(req);
  req.app = fancy_app();
  req.grid = {30.0, 4};
  expect_round_trip(req);
}

TEST(ApiRequestJson, McRoundTrip) {
  api::McRequest req;
  expect_round_trip(req);
  req.app = fancy_app();
  req.grid = {20.0, 3};
  req.samples = 64;
  req.seed = 7;
  req.dist_L = "uniform:2500,3500";
  req.sigma_o = 0.02;
  req.edge_sigma = 0.003;
  req.edge_bias = 0.001;
  req.bands = {1.0, 2.5};
  req.threads = 2;
  expect_round_trip(req);
}

TEST(ApiRequestJson, CampaignRoundTrip) {
  api::CampaignRequest req;
  expect_round_trip(req);
  req.apps = {"lulesh", "hpcg"};
  req.ranks = {8, 27};
  req.scales = {0.02, 0.05};
  req.topologies = {"none", "fat-tree"};
  req.nets = {"cscs", "daint"};
  req.L_list = {"5000", "1e4"};
  req.o_list = {"4000"};
  req.S = 2048;
  req.grid = {20.0, 3};
  req.topo.ft_radix = 16;
  req.mc_samples = 8;
  req.seed = 3;
  req.mc_sigma_L = 0.05;
  req.probe = "emulator";
  req.probe_runs = 2;
  req.noise_sigma = 0.004;
  req.threads = 4;
  expect_round_trip(req);
}

TEST(ApiRequestJson, TopoRoundTrip) {
  api::TopoRequest req;
  expect_round_trip(req);
  req.app = fancy_app();
  req.l_wire = 300.0;
  req.d_switch = 100.0;
  req.ft_radix = 16;
  req.df_groups = 4;
  expect_round_trip(req);
}

TEST(ApiRequestJson, PlaceRoundTrip) {
  api::PlaceRequest req;
  expect_round_trip(req);
  req.app = fancy_app();
  req.max_rounds = 16;
  expect_round_trip(req);
}

TEST(ApiRequestJson, ParseAppliesDefaults) {
  const api::Request req = api::parse_request("{\"op\": \"analyze\"}");
  const auto& r = std::get<api::AnalyzeRequest>(req);
  EXPECT_EQ(r.app.app, "lulesh");
  EXPECT_EQ(r.app.ranks, 8);
  EXPECT_DOUBLE_EQ(r.app.scale, 0.25);
  EXPECT_FALSE(r.app.L.has_value());
  EXPECT_DOUBLE_EQ(r.grid.dl_max_us, 100.0);
  EXPECT_EQ(r.grid.points, 11);
  EXPECT_EQ(r.threads, 0);
}

// The JSON surface takes the CLI's typo stance: unknown fields, wrong
// types, malformed documents, and orphaned probe knobs are usage errors.
TEST(ApiRequestJson, RejectsMalformedRequests) {
  const std::vector<std::string> bad = {
      "",
      "not json",
      "[]",
      "42",
      "{\"op\": \"frobnicate\"}",
      "{}",
      "{\"op\": \"analyze\", \"pionts\": 3}",
      "{\"op\": \"analyze\", \"app\": {\"nmae\": \"lulesh\"}}",
      "{\"op\": \"analyze\", \"grid\": {\"points\": \"three\"}}",
      "{\"op\": \"analyze\", \"grid\": {\"points\": 2.5}}",
      "{\"op\": \"mc\", \"seed\": -1}",
      "{\"op\": \"mc\", \"dist_L\": \"\"}",
      "{\"op\": \"analyze\", \"app\": {\"ranks\": 1e300}}",
      "{\"op\": \"campaign\", \"probe_runs\": 2}",
      "{\"op\": \"analyze\"} trailing",
      "{\"op\": \"analyze\", \"op\": \"sweep\"}",
  };
  for (const std::string& json : bad) {
    EXPECT_THROW((void)api::parse_request(json), UsageError) << json;
  }
}

TEST(ApiRequestJson, SeedsAboveDoublePrecisionSurviveExactly) {
  // Seeds are u64; going through a double would silently round anything
  // above 2^53 and break the reproducibility contract.
  const auto parsed = api::parse_request(
      "{\"op\": \"mc\", \"seed\": 9007199254740993}");
  EXPECT_EQ(std::get<api::McRequest>(parsed).seed, 9007199254740993ull);

  const auto max = api::parse_request(
      "{\"op\": \"mc\", \"seed\": 18446744073709551615}");
  EXPECT_EQ(std::get<api::McRequest>(parsed).seed, 9007199254740993ull);
  EXPECT_EQ(std::get<api::McRequest>(max).seed, 18446744073709551615ull);

  api::McRequest req;
  req.seed = 18446744073709551615ull;
  expect_round_trip(req);

  // Scientific spellings stay usable while exact; overflow is an error.
  const auto sci = api::parse_request("{\"op\": \"mc\", \"seed\": 5e3}");
  EXPECT_EQ(std::get<api::McRequest>(sci).seed, 5000ull);
  EXPECT_THROW(
      (void)api::parse_request(
          "{\"op\": \"mc\", \"seed\": 18446744073709551616}"),
      UsageError);
  EXPECT_THROW((void)api::parse_request("{\"op\": \"mc\", \"seed\": 1e300}"),
               UsageError);
}

TEST(ApiRequestJson, NumberSpellingSurvivesTheOverrideAxes) {
  // L_list entries name config variants, so "1e4" must not be rewritten
  // as "10000" by a (de)serialization pass.
  const api::Request req = api::parse_request(
      "{\"op\": \"campaign\", \"L_list\": [\"1e4\", 5000]}");
  const auto& r = std::get<api::CampaignRequest>(req);
  ASSERT_EQ(r.L_list.size(), 2u);
  EXPECT_EQ(r.L_list[0], "1e4");
  EXPECT_EQ(r.L_list[1], "5000");
}

// ---------------------------------------------------------------------------
// CLI ↔ Engine byte equivalence: the CLI is a thin adapter, so building
// the request by hand and rendering the engine's result must reproduce the
// subcommand's bytes exactly, for every subcommand and format.
// ---------------------------------------------------------------------------

struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "llamp");
  std::ostringstream out, err;
  CliResult r;
  r.code = tools::run(static_cast<int>(args.size()), args.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

api::AppSpec small_app(const char* name) {
  api::AppSpec app;
  app.app = name;
  app.ranks = 8;
  app.scale = 0.02;
  return app;
}

template <typename Result>
std::string rendered(const Result& res, core::OutputFormat format) {
  std::ostringstream os;
  res.render(format, os);
  return os.str();
}

TEST(ApiCliEquivalence, Analyze) {
  api::AnalyzeRequest req;
  req.app = small_app("lulesh");
  req.grid = {50.0, 3};
  api::Engine engine;
  const auto res = engine.analyze(req);
  const std::vector<const char*> args = {"analyze", "--app=lulesh",
                                         "--ranks=8", "--scale=0.02",
                                         "--points=3", "--dl-max-us=50"};
  for (const auto& [flag, format] :
       std::vector<std::pair<const char*, core::OutputFormat>>{
           {"--format=table", core::OutputFormat::kTable},
           {"--format=csv", core::OutputFormat::kCsv},
           {"--format=json", core::OutputFormat::kJson}}) {
    auto cli_args = args;
    cli_args.push_back(flag);
    const auto cli = run_cli(cli_args);
    ASSERT_EQ(cli.code, 0) << cli.err;
    EXPECT_EQ(cli.out, rendered(res, format)) << flag;
  }
}

TEST(ApiCliEquivalence, Sweep) {
  api::SweepRequest req;
  req.app = small_app("hpcg");
  req.grid = {30.0, 4};
  api::Engine engine;
  const auto res = engine.sweep(req);
  const auto cli = run_cli({"sweep", "--app=hpcg", "--ranks=8",
                            "--scale=0.02", "--points=4", "--dl-max-us=30"});
  ASSERT_EQ(cli.code, 0) << cli.err;
  EXPECT_EQ(cli.out, rendered(res, core::OutputFormat::kTable));
}

TEST(ApiCliEquivalence, Campaign) {
  api::CampaignRequest req;
  req.apps = {"lulesh", "hpcg"};
  req.scales = {0.02};
  req.topologies = {"none", "fat-tree"};
  req.grid = {20.0, 3};
  api::Engine engine;
  const auto res = engine.campaign(req);
  for (const char* fmt : {"--format=table", "--format=csv", "--format=json"}) {
    const auto cli =
        run_cli({"campaign", "--apps=lulesh,hpcg", "--scales=0.02",
                 "--topos=none,fat-tree", "--points=3", "--dl-max-us=20",
                 fmt});
    ASSERT_EQ(cli.code, 0) << cli.err;
    const auto format = core::parse_output_format(fmt + 9);
    EXPECT_EQ(cli.out, rendered(res, format)) << fmt;
  }
}

TEST(ApiCliEquivalence, Mc) {
  api::McRequest req;
  req.app = small_app("lulesh");
  req.grid = {20.0, 3};
  req.samples = 8;
  req.seed = 7;
  req.sigma_L = 0.05;
  req.edge_sigma = 0.003;
  api::Engine engine;
  const auto res = engine.mc(req);
  const auto cli = run_cli({"mc", "--app=lulesh", "--ranks=8",
                            "--scale=0.02", "--points=3", "--dl-max-us=20",
                            "--samples=8", "--seed=7", "--sigma-L=0.05",
                            "--edge-sigma=0.003", "--format=csv"});
  ASSERT_EQ(cli.code, 0) << cli.err;
  EXPECT_EQ(cli.out, rendered(res, core::OutputFormat::kCsv));
}

TEST(ApiCliEquivalence, Topo) {
  api::TopoRequest req;
  req.app = small_app("icon");
  req.app.scale = 0.05;
  api::Engine engine;
  const auto res = engine.topo(req);
  const auto cli =
      run_cli({"topo", "--app=icon", "--ranks=8", "--scale=0.05"});
  ASSERT_EQ(cli.code, 0) << cli.err;
  EXPECT_EQ(cli.out, rendered(res, core::OutputFormat::kTable));
}

TEST(ApiCliEquivalence, Place) {
  api::PlaceRequest req;
  req.app = small_app("icon");
  req.app.scale = 0.05;
  api::Engine engine;
  const auto res = engine.place(req);
  const auto cli =
      run_cli({"place", "--app=icon", "--ranks=8", "--scale=0.05"});
  ASSERT_EQ(cli.code, 0) << cli.err;
  EXPECT_EQ(cli.out, rendered(res, core::OutputFormat::kTable));
}

// ---------------------------------------------------------------------------
// Engine session caching: a repeated request must re-lower nothing, and
// the cache must be shared across request types.
// ---------------------------------------------------------------------------

TEST(ApiEngineCache, RepeatedRequestHitsTheGraphCache) {
  api::Engine engine;
  api::AnalyzeRequest req;
  req.app = small_app("lulesh");
  req.grid = {20.0, 3};
  const auto first = engine.analyze(req);
  const auto after_first = engine.cache_stats();
  EXPECT_EQ(after_first.built, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  const auto second = engine.analyze(req);
  const auto after_second = engine.cache_stats();
  EXPECT_EQ(after_second.built, 1u) << "second request re-built the graph";
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(rendered(first, core::OutputFormat::kTable),
            rendered(second, core::OutputFormat::kTable));
}

TEST(ApiEngineCache, CacheIsSharedAcrossRequestTypes) {
  api::Engine engine;
  api::AnalyzeRequest analyze;
  analyze.app = small_app("lulesh");
  analyze.grid = {20.0, 3};
  (void)engine.analyze(analyze);
  EXPECT_EQ(engine.cache_stats().built, 1u);

  // Same scenario through sweep and a campaign: no new graph.
  api::SweepRequest sweep;
  sweep.app = small_app("lulesh");
  sweep.grid = {20.0, 3};
  (void)engine.sweep(sweep);
  EXPECT_EQ(engine.cache_stats().built, 1u);

  api::CampaignRequest campaign;
  campaign.apps = {"lulesh", "hpcg"};
  campaign.scales = {0.02};
  campaign.grid = {20.0, 3};
  (void)engine.campaign(campaign);
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.built, 2u) << "only hpcg was new";
  EXPECT_GE(stats.hits, 2u);
}

TEST(ApiEngineCache, WarmCacheNeverChangesCampaignBytes) {
  api::CampaignRequest req;
  req.apps = {"lulesh", "hpcg"};
  req.scales = {0.02};
  req.grid = {20.0, 3};

  api::Engine cold;
  const auto cold_res = cold.campaign(req);

  api::Engine warm;
  api::AnalyzeRequest analyze;
  analyze.app = small_app("hpcg");
  analyze.grid = {20.0, 3};
  (void)warm.analyze(analyze);  // pre-populates hpcg's graph
  const auto warm_res = warm.campaign(req);

  for (const auto format :
       {core::OutputFormat::kTable, core::OutputFormat::kCsv,
        core::OutputFormat::kJson}) {
    EXPECT_EQ(rendered(cold_res, format), rendered(warm_res, format));
  }
}

// ---------------------------------------------------------------------------
// Solver warm-starting (PR 7): responses must be byte-identical whether the
// solver cache is cold, warm, or shared across threads — across repeated
// and nearby requests, every output format, and every request type — and
// repeats must re-lower nothing.
// ---------------------------------------------------------------------------

constexpr core::OutputFormat kAllFormats[] = {core::OutputFormat::kTable,
                                              core::OutputFormat::kCsv,
                                              core::OutputFormat::kJson};

TEST(ApiSolverCache, RepeatedAndNearbyRequestsMatchColdBytes) {
  std::vector<api::SweepRequest> sweeps;
  for (const double dl : {20.0, 20.0, 21.0, 20.5, 20.0}) {
    api::SweepRequest req;
    req.app = small_app("hpcg");
    req.grid = {dl, 3};
    sweeps.push_back(req);
  }
  api::AnalyzeRequest analyze;
  analyze.app = small_app("hpcg");
  analyze.grid = {20.0, 3};

  api::Engine warm;
  for (int round = 0; round < 2; ++round) {
    for (const auto& req : sweeps) {
      const auto warm_res = warm.sweep(req);
      api::Engine cold;
      const auto cold_res = cold.sweep(req);
      for (const auto format : kAllFormats) {
        EXPECT_EQ(rendered(cold_res, format), rendered(warm_res, format));
      }
      EXPECT_EQ(cold_res.to_json_line(), warm_res.to_json_line());
    }
    const auto warm_rep = warm.analyze(analyze);
    api::Engine cold;
    const auto cold_rep = cold.analyze(analyze);
    for (const auto format : kAllFormats) {
      EXPECT_EQ(rendered(cold_rep, format), rendered(warm_rep, format));
    }
    EXPECT_EQ(cold_rep.to_json_line(), warm_rep.to_json_line());
  }

  // One scenario, one latency lowering (analyze adds the bandwidth space);
  // every repeat and nearby grid reused them.
  const auto stats = warm.solver_cache_stats();
  EXPECT_EQ(stats.built, 2u) << warm.solver_cache_stats_string();
  EXPECT_GE(stats.hits, 10u);
  EXPECT_GT(stats.replays, 0u) << "repeats should replay cached anchors";
}

TEST(ApiSolverCache, McWarmPathMatchesColdBytes) {
  api::McRequest req;
  req.app = small_app("lulesh");
  req.grid = {20.0, 3};
  req.samples = 8;
  req.seed = 7;
  req.sigma_L = 0.05;  // only L jittered: the shared-solver path engages

  api::Engine warm;
  api::SweepRequest pre;
  pre.app = small_app("lulesh");
  pre.grid = {20.0, 3};
  (void)warm.sweep(pre);  // pre-warms the very lowering mc should reuse
  const auto warm_res = warm.mc(req);
  api::Engine cold;
  const auto cold_res = cold.mc(req);
  for (const auto format : kAllFormats) {
    EXPECT_EQ(rendered(cold_res, format), rendered(warm_res, format));
  }
  EXPECT_EQ(cold_res.to_json_line(), warm_res.to_json_line());

  // With edge noise the shared path disengages (per-sample perturbed
  // spaces); bytes still cannot depend on the session's cache.
  req.edge_sigma = 0.003;
  const auto warm_noise = warm.mc(req);
  const auto cold_noise = cold.mc(req);
  EXPECT_EQ(cold_noise.to_json_line(), warm_noise.to_json_line());
}

TEST(ApiSolverCache, CampaignWarmVsColdBytesIncludingMcAxis) {
  api::CampaignRequest req;
  req.apps = {"lulesh", "hpcg"};
  req.scales = {0.02};
  req.grid = {20.0, 3};
  req.mc_samples = 4;
  req.mc_sigma_L = 0.05;

  api::Engine cold;
  const auto cold_res = cold.campaign(req);

  api::Engine warm;
  api::AnalyzeRequest analyze;
  analyze.app = small_app("hpcg");
  analyze.grid = {20.0, 3};
  (void)warm.analyze(analyze);  // pre-warms hpcg's graph AND its lowering
  const auto first = warm.campaign(req);
  const auto second = warm.campaign(req);  // fully warm repeat

  for (const auto format : kAllFormats) {
    EXPECT_EQ(rendered(cold_res, format), rendered(first, format));
    EXPECT_EQ(rendered(cold_res, format), rendered(second, format));
  }
  EXPECT_EQ(cold_res.to_json_line(), second.to_json_line());
  EXPECT_GT(warm.solver_cache_stats().replays, 0u);
}

// ---------------------------------------------------------------------------
// Batch execution.
// ---------------------------------------------------------------------------

std::string mixed_workload_jsonl() {
  // >= 20 requests mixing every op, small enough to stay fast.
  std::string in;
  for (const char* app : {"lulesh", "hpcg", "milc", "icon"}) {
    in += std::string("{\"op\": \"analyze\", \"app\": {\"name\": \"") + app +
          "\", \"scale\": 0.02}, \"grid\": {\"dl_max_us\": 20, "
          "\"points\": 3}}\n";
    in += std::string("{\"op\": \"sweep\", \"app\": {\"name\": \"") + app +
          "\", \"scale\": 0.02}, \"grid\": {\"dl_max_us\": 20, "
          "\"points\": 3}}\n";
    in += std::string("{\"op\": \"mc\", \"app\": {\"name\": \"") + app +
          "\", \"scale\": 0.02}, \"grid\": {\"dl_max_us\": 20, "
          "\"points\": 3}, \"samples\": 4, \"sigma_L\": 0.05}\n";
    in += std::string("{\"op\": \"topo\", \"app\": {\"name\": \"") + app +
          "\", \"scale\": 0.02}}\n";
    in += std::string("{\"op\": \"place\", \"app\": {\"name\": \"") + app +
          "\", \"scale\": 0.02}}\n";
  }
  in +=
      "{\"op\": \"campaign\", \"apps\": [\"lulesh\", \"hpcg\"], "
      "\"scales\": [0.02], \"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n";
  return in;  // 21 requests
}

TEST(ApiSolverCache, WarmBatchBytesAreThreadCountInvariant) {
  // The full mixed workload, served twice on one engine: the warm pass
  // must reproduce the cold pass byte for byte, at 1 and at 8 threads.
  const std::string input = mixed_workload_jsonl();
  auto serve_twice = [&](int threads) {
    api::Engine engine(api::Engine::Options{.threads = threads});
    std::istringstream in1(input);
    std::ostringstream out1;
    (void)api::serve_jsonl(engine, in1, out1, threads);
    std::istringstream in2(input);
    std::ostringstream out2;
    (void)api::serve_jsonl(engine, in2, out2, threads);
    EXPECT_EQ(out1.str(), out2.str())
        << "warm pass changed bytes at threads=" << threads;
    return out2.str();
  };
  EXPECT_EQ(serve_twice(1), serve_twice(8));
}

TEST(ApiBatch, ByteDeterministicAcrossThreadCounts) {
  const std::string input = mixed_workload_jsonl();
  auto serve = [&](int threads) {
    // Pool sized to the requested count so the 8-thread run is genuinely
    // parallel whatever the host's core count.
    api::Engine engine(api::Engine::Options{.threads = threads});
    std::istringstream in(input);
    std::ostringstream out;
    const auto outcome = api::serve_jsonl(engine, in, out, threads);
    EXPECT_EQ(outcome.requests, 21u);
    EXPECT_EQ(outcome.failures, 0u);
    return out.str();
  };
  const std::string serial = serve(1);
  const std::string parallel = serve(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ApiBatch, ResultsComeBackInInputOrder) {
  const std::string input = mixed_workload_jsonl();
  api::Engine engine(api::Engine::Options{.threads = 8});
  std::istringstream in(input);
  std::ostringstream out;
  (void)api::serve_jsonl(engine, in, out, 8);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t expect_id = 0;
  while (std::getline(lines, line)) {
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue* id = doc.find("id");
    ASSERT_NE(id, nullptr) << line;
    EXPECT_EQ(id->as_number("id"), static_cast<double>(expect_id));
    EXPECT_NE(doc.find("result"), nullptr) << line;
    ++expect_id;
  }
  EXPECT_EQ(expect_id, 21u);
}

TEST(ApiBatch, BadLinesFailInBandAndDoNotAbortTheBatch) {
  const std::string input =
      "{\"op\": \"sweep\", \"app\": {\"name\": \"lulesh\", \"scale\": "
      "0.02}, \"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n"
      "\n"  // blank lines are skipped
      "this is not json\n"
      "{\"op\": \"sweep\", \"grid\": {\"points\": 1}}\n"
      "{\"op\": \"analyze\", \"app\": {\"name\": \"no-such-app\"}}\n"
      "{\"op\": \"sweep\", \"bogus_field\": 1}\n"
      "{\"op\": \"place\", \"app\": {\"name\": \"icon\", \"scale\": "
      "0.02}}\n";
  api::Engine engine;
  std::istringstream in(input);
  std::ostringstream out;
  const auto outcome = api::serve_jsonl(engine, in, out, 2);
  EXPECT_EQ(outcome.requests, 6u);
  EXPECT_EQ(outcome.failures, 4u);

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"result\""), std::string::npos);
  // Unparseable JSON: error with no op to echo.
  EXPECT_NE(lines[1].find("\"error\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"usage\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"op\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\": \"usage\""), std::string::npos);
  EXPECT_NE(lines[2].find("points"), std::string::npos);
  EXPECT_NE(lines[3].find("\"kind\": \"analysis\""), std::string::npos);
  // A rejected-but-readable request still echoes its op.
  EXPECT_NE(lines[4].find("\"op\": \"sweep\""), std::string::npos);
  EXPECT_NE(lines[4].find("bogus_field"), std::string::npos);
  EXPECT_NE(lines[5].find("\"result\""), std::string::npos);
}

TEST(ApiBatch, RunBatchSharesTheSessionCache) {
  api::Engine engine(api::Engine::Options{.threads = 4});
  std::vector<api::Request> requests;
  for (int i = 0; i < 6; ++i) {
    api::SweepRequest req;
    req.app = small_app("lulesh");
    req.grid = {20.0, 3};
    requests.emplace_back(req);
  }
  const auto outcomes = engine.run_batch(requests, 4);
  ASSERT_EQ(outcomes.size(), 6u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.response.has_value());
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.built, 1u) << "identical requests must share one graph";
  EXPECT_EQ(stats.hits, 5u);
}

TEST(ApiBatch, ConcurrentRunBatchCallsSerializeSafely) {
  // The engine doc promises concurrent run_batch callers are safe (they
  // serialize on an internal lock); both batches must complete cleanly.
  api::Engine engine(api::Engine::Options{.threads = 4});
  auto batch_of = [](const char* app) {
    std::vector<api::Request> reqs;
    for (int i = 0; i < 4; ++i) {
      api::SweepRequest req;
      req.app = small_app(app);
      req.grid = {20.0, 3};
      reqs.emplace_back(req);
    }
    return reqs;
  };
  std::vector<api::Engine::Outcome> a, b;
  std::thread t1([&] { a = engine.run_batch(batch_of("lulesh"), 4); });
  std::thread t2([&] { b = engine.run_batch(batch_of("hpcg"), 4); });
  t1.join();
  t2.join();
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (const auto& o : a) EXPECT_TRUE(o.response.has_value()) << o.error;
  for (const auto& o : b) EXPECT_TRUE(o.response.has_value()) << o.error;
}

TEST(ApiBatch, CrlfBlankLinesAndMissingTrailingNewlineAreHandled) {
  const std::string sweep_line =
      "{\"op\": \"sweep\", \"app\": {\"name\": \"lulesh\", \"scale\": "
      "0.02}, \"grid\": {\"dl_max_us\": 20, \"points\": 3}}";
  const std::string place_line =
      "{\"op\": \"place\", \"app\": {\"name\": \"icon\", \"scale\": 0.02}}";
  const std::string lf = sweep_line + "\n" + place_line + "\n";
  // Same two requests: CRLF endings, a whitespace-only CR line between
  // them, and no trailing newline on the last request.
  const std::string crlf = sweep_line + "\r\n\r\n" + place_line;

  auto serve = [](const std::string& input) {
    api::Engine engine;
    std::istringstream in(input);
    std::ostringstream out;
    const auto outcome = api::serve_jsonl(engine, in, out, 2);
    EXPECT_EQ(outcome.requests, 2u);
    EXPECT_EQ(outcome.failures, 0u);
    return out.str();
  };
  EXPECT_EQ(serve(lf), serve(crlf));
}

TEST(ApiBatch, ParseErrorsNameThePhysicalInputLine) {
  // Leading blanks shift request ids off physical line numbers — the
  // in-band error must name the physical line, id stays the request index.
  const std::string input = "\n\nnot json\r\n{\"op\": \"sweep\"[]}\n";
  api::Engine engine;
  std::istringstream in(input);
  std::ostringstream out;
  const auto outcome = api::serve_jsonl(engine, in, out, 1);
  EXPECT_EQ(outcome.requests, 2u);
  EXPECT_EQ(outcome.failures, 2u);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\": 0"), std::string::npos);
  EXPECT_NE(lines[0].find("input line 3:"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"id\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("input line 4:"), std::string::npos) << lines[1];
}

// ---------------------------------------------------------------------------
// Non-finite hygiene (PR 7): inf/nan must never reach any serializer as a
// bare JSON token — parameters are rejected at validation, and every value
// emitter degrades to null.
// ---------------------------------------------------------------------------

TEST(ApiNonFinite, ParamOverridesAreRejectedAtValidation) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  api::Engine engine;
  for (const double bad : {nan, inf}) {
    api::AnalyzeRequest req;
    req.app = small_app("lulesh");
    req.grid = {20.0, 3};
    req.app.L = bad;
    EXPECT_THROW((void)engine.analyze(req), Error);
    req.app.L.reset();
    req.app.o = bad;
    EXPECT_THROW((void)engine.analyze(req), Error);
    req.app.o.reset();
    req.app.G = bad;
    EXPECT_THROW((void)engine.analyze(req), Error);
  }
}

TEST(ApiNonFinite, ReportJsonEmitsNullForNonFiniteValues) {
  core::ToleranceReport rep;
  rep.params = loggops::NetworkConfig::cscs_testbed();
  rep.base_runtime = std::numeric_limits<double>::infinity();
  rep.lambda_L_base = std::numeric_limits<double>::quiet_NaN();
  rep.lambda_G = -std::numeric_limits<double>::infinity();
  rep.bands.push_back({1.0, std::numeric_limits<double>::infinity()});
  core::LatencyAnalyzer::SweepPoint pt;
  pt.delta_L = 0.0;
  pt.runtime = std::numeric_limits<double>::quiet_NaN();
  pt.lambda_L = std::numeric_limits<double>::infinity();
  pt.rho_L = 0.5;
  rep.curve.push_back(pt);
  rep.critical_latencies.push_back(
      std::numeric_limits<double>::infinity());

  for (const std::string& json : {rep.to_json(), rep.to_json_line()}) {
    // Must parse as JSON at all (bare inf/nan tokens would throw) ...
    const JsonValue doc = JsonValue::parse(json);
    // ... and the non-finite members must have degraded to null.
    EXPECT_NE(json.find("\"base_runtime_ns\": null"), std::string::npos);
    EXPECT_NE(json.find("\"lambda_l\": null"), std::string::npos);
    EXPECT_NE(json.find("\"lambda_g\": null"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
    (void)doc;
  }
}

TEST(ApiNonFinite, TableEmittersQuoteNonFiniteCells) {
  // The table→JSON renderers type cells by "parses as a finite number":
  // non-finite cells (unbounded tolerances) must come out as strings or
  // null, never bare tokens.  mc summaries with unbounded samples are the
  // natural producer.
  api::McRequest req;
  req.app = small_app("lulesh");
  req.grid = {20.0, 3};
  req.samples = 2;
  req.seed = 3;
  api::Engine engine;
  const auto res = engine.mc(req);  // degenerate: tolerances unbounded iff flat
  const std::string line = res.to_json_line();
  (void)JsonValue::parse(line);
  const std::string json = rendered(res, core::OutputFormat::kJson);
  std::istringstream rows(json);
  std::string row;
  while (std::getline(rows, row)) {
    EXPECT_EQ(row.find(": inf"), std::string::npos) << row;
    EXPECT_EQ(row.find(": nan"), std::string::npos) << row;
  }
}

// Degenerate-input hygiene of the JSON layer itself.
TEST(ApiJsonValue, ParserEdgeCases) {
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 01}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": +1}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": tru}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": \"x}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("[1, 2,]"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 1, \"a\": 2}"), UsageError);
  EXPECT_THROW((void)JsonValue::parse("nullx"), UsageError);

  const JsonValue v = JsonValue::parse(
      " {\"s\": \"a\\u0041\\n\", \"n\": -1.5e3, \"b\": true, "
      "\"x\": null, \"arr\": [1, \"two\"]} ");
  EXPECT_EQ(v.find("s")->as_string("s"), "aA\n");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number("n"), -1500.0);
  EXPECT_TRUE(v.find("b")->as_bool("b"));
  EXPECT_TRUE(v.find("x")->is_null());
  EXPECT_EQ(v.find("arr")->as_array("arr").size(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ApiJsonValue, JsonDoubleRoundTrips) {
  for (const double x : {0.0, 0.25, 0.1, 1e-9, 3.0000000001, 12345.678,
                         1.7976931348623157e308}) {
    const std::string s = json_double(x);
    EXPECT_EQ(std::stod(s), x) << s;
  }
  EXPECT_EQ(json_double(0.25), "0.25");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace llamp
