#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace llamp {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool: the persistent-worker twin of parallel_for_workers, used by
// the api::Engine batch path.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> seen(101);
  pool.for_workers(seen.size(), 0, [&](int worker, std::size_t i) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    seen[i].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, StridingMatchesParallelForWorkers) {
  // Same worker → index assignment as the free function, the property the
  // engine's determinism contract is stated against.
  ThreadPool pool(3);
  std::vector<int> pool_worker(20, -1), free_worker(20, -1);
  pool.for_workers(pool_worker.size(), 3,
                   [&](int w, std::size_t i) { pool_worker[i] = w; });
  parallel_for_workers(free_worker.size(), 3,
                       [&](int w, std::size_t i) { free_worker[i] = w; });
  EXPECT_EQ(pool_worker, free_worker);
}

TEST(ThreadPool, ReusableAcrossJobsAndCapsWorkers) {
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long long> sum{0};
    const int cap = 1 + round % 8;
    pool.for_workers(round + 1, cap, [&](int worker, std::size_t i) {
      EXPECT_LT(worker, cap);
      sum.fetch_add(static_cast<long long>(i));
    });
    const long long n = round;  // indices 0..round
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPool, PropagatesExceptionsAndSurvivesThem) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_workers(32, 0,
                       [&](int, std::size_t i) {
                         if (i == 17) throw Error("boom");
                       }),
      Error);
  // The pool must stay serviceable after a failed job.
  std::atomic<int> count{0};
  pool.for_workers(8, 0, [&](int, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// ---------------------------------------------------------------------------
// util/math.hpp: the branch-free power-of-two helpers behind the batch
// kernel's tail dispatch (solve_batch splits a remainder of r lanes into
// last_pow2(r)-wide sub-blocks).
// ---------------------------------------------------------------------------

TEST(PowerOfTwo, LastPow2) {
  EXPECT_EQ(util::last_pow2(0u), 0u);
  EXPECT_EQ(util::last_pow2(1u), 1u);
  EXPECT_EQ(util::last_pow2(2u), 2u);
  EXPECT_EQ(util::last_pow2(3u), 2u);
  EXPECT_EQ(util::last_pow2(4u), 4u);
  EXPECT_EQ(util::last_pow2(5u), 4u);
  EXPECT_EQ(util::last_pow2(7u), 4u);
  EXPECT_EQ(util::last_pow2(8u), 8u);
  EXPECT_EQ(util::last_pow2(std::size_t{1} << 62), std::size_t{1} << 62);
  EXPECT_EQ(util::last_pow2((std::size_t{1} << 62) | 1u), std::size_t{1} << 62);
  EXPECT_EQ(util::last_pow2(~std::size_t{0}), std::size_t{1} << 63);
  // The exhaustive invariant on a small range: the result is the largest
  // power of two <= n.
  for (std::size_t n = 1; n < 300; ++n) {
    const std::size_t p = util::last_pow2(n);
    EXPECT_TRUE(util::is_pow2(p)) << n;
    EXPECT_LE(p, n) << n;
    EXPECT_GT(2 * p, n) << n;
  }
}

TEST(PowerOfTwo, RoundUpPow2) {
  EXPECT_EQ(util::round_up_pow2(0u), 1u);
  EXPECT_EQ(util::round_up_pow2(1u), 1u);
  EXPECT_EQ(util::round_up_pow2(2u), 2u);
  EXPECT_EQ(util::round_up_pow2(3u), 4u);
  EXPECT_EQ(util::round_up_pow2(5u), 8u);
  EXPECT_EQ(util::round_up_pow2(8u), 8u);
  EXPECT_EQ(util::round_up_pow2(9u), 16u);
  EXPECT_EQ(util::round_up_pow2((std::size_t{1} << 40) + 1),
            std::size_t{1} << 41);
  for (std::size_t n = 1; n < 300; ++n) {
    const std::size_t p = util::round_up_pow2(n);
    EXPECT_TRUE(util::is_pow2(p)) << n;
    EXPECT_GE(p, n) << n;
    EXPECT_LT(p / 2, n) << n;
  }
}

TEST(PowerOfTwo, IsPow2) {
  EXPECT_FALSE(util::is_pow2(0u));
  EXPECT_TRUE(util::is_pow2(1u));
  EXPECT_TRUE(util::is_pow2(2u));
  EXPECT_FALSE(util::is_pow2(3u));
  EXPECT_TRUE(util::is_pow2(std::size_t{1} << 63));
  EXPECT_FALSE(util::is_pow2((std::size_t{1} << 63) + 1));
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, EmptyInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, Rmse) {
  const std::vector<double> m{10, 20, 30};
  const std::vector<double> p{11, 19, 31};
  EXPECT_NEAR(rmse(m, p), 1.0, 1e-12);
  EXPECT_NEAR(rrmse_percent(m, p), 100.0 * 1.0 / 20.0, 1e-12);
}

TEST(Stats, RmseErrors) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)rmse(a, b), Error);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)rrmse_percent(zeros, zeros), Error);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

// Pins the documented population-variance convention (divide by N): the
// sample estimator would give 5/3 for this input, not 1.25.
TEST(Stats, PopulationVarianceConvention) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_NE(variance(xs), 5.0 / 3.0);
  // Degenerate inputs: fewer than two elements have zero dispersion.
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{7.0}), 0.0);

  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.variance(), 1.25);
  RunningStats one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
}

// Pins the R-7 interpolation scheme: index = p/100 * (N-1), endpoint clamp.
TEST(Stats, PercentileInterpolationEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 10.0);    // clamps below 0
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);    // lands on an element
  EXPECT_DOUBLE_EQ(percentile(xs, 37.5), 25.0);  // interpolates halfway
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 120), 50.0);   // clamps above 100
  const std::vector<double> single{3.5};
  EXPECT_DOUBLE_EQ(percentile(single, 0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(single, 50), 3.5);
  EXPECT_DOUBLE_EQ(percentile(single, 100), 3.5);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto out = split("a::b:", ':');
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[2], "b");
  EXPECT_EQ(out[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto out = split_ws("  a \t b\nc  ");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseValidation) {
  EXPECT_EQ(parse_ll(" 42 "), 42);
  EXPECT_DOUBLE_EQ(parse_double("2.5e3"), 2500.0);
  EXPECT_THROW((void)parse_ll("4x"), Error);
  EXPECT_THROW((void)parse_ll(""), Error);
  EXPECT_THROW((void)parse_double("abc"), Error);
}

TEST(Strings, HumanFormats) {
  EXPECT_EQ(human_count(48'300'000.0), "48.3 M");
  EXPECT_EQ(human_time_ns(3'000.0), "3.000 us");
  EXPECT_EQ(human_time_ns(1.5e9), "1.500 s");
}

TEST(TimeUnits, Conversions) {
  EXPECT_DOUBLE_EQ(us(3.0), 3000.0);
  EXPECT_DOUBLE_EQ(ms(1.0), 1e6);
  EXPECT_DOUBLE_EQ(sec(2.0), 2e9);
  EXPECT_DOUBLE_EQ(to_us(1500.0), 1.5);
}

TEST(Table, AlignedRender) {
  Table t({"app", "T"});
  t.add_row({"milc", "8.1"});
  t.add_row({"lulesh2", "5"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("lulesh2"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"x,y", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n\"x,y\",2\n");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--runs=5", "--verbose", "positional",
                        "--ratio=2.5"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("runs", 0), 5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(RngDeterminism, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngDeterminism, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(RngDistribution, UniformMoments) {
  Rng rng(123);
  RunningStats rs;
  for (int i = 0; i < 20'000; ++i) rs.add(rng.uniform());
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(RngDistribution, NormalMoments) {
  Rng rng(321);
  RunningStats rs;
  for (int i = 0; i < 20'000; ++i) rs.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(RngDistribution, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngDistribution, UniformIntDeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.uniform_int(0, 6), b.uniform_int(0, 6));
  }
}

// With rejection sampling every value of a non-power-of-two span is equally
// likely.  The second check uses a span of 0.75 * 2^63, where `next_u64() %
// span` would put only ~43.75% of the mass above the midpoint (the lowest
// two-thirds of the range is hit by three 64-bit words instead of two) —
// far outside the band below for the fixed seed.
TEST(RngDistribution, UniformIntUnbiased) {
  Rng rng(77);
  constexpr int kDraws = 27'000;
  int counts[9] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.uniform_int(0, 8)]++;
  for (int c : counts) {
    EXPECT_GT(c, 2'700);  // expectation 3000; loose 10x-sigma band
    EXPECT_LT(c, 3'300);
  }

  const std::int64_t hi = (std::int64_t{1} << 62) + (std::int64_t{1} << 61);
  int upper_half = 0;
  for (int i = 0; i < 40'000; ++i) {
    upper_half += rng.uniform_int(0, hi) > hi / 2;
  }
  EXPECT_GT(upper_half, 19'400);  // ~6 sigma around the unbiased 20'000;
  EXPECT_LT(upper_half, 20'600);  // the biased draw sits near 17'500
}

}  // namespace
}  // namespace llamp
