#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_driver.hpp"

namespace llamp {
namespace {

/// Drive the unified CLI in-process and capture its streams.
struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "llamp");
  std::ostringstream out, err;
  CliResult r;
  r.code = tools::run(static_cast<int>(args.size()), args.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CliSmoke, AnalyzeSmallApp) {
  const auto r =
      run_cli({"analyze", "--app=lulesh", "--ranks=8", "--scale=0.05",
               "--points=3", "--dl-max-us=50"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "app: lulesh"));
  EXPECT_TRUE(contains(r.out, "base runtime T(L):"));
  EXPECT_TRUE(contains(r.out, "lambda_L"));
  EXPECT_TRUE(contains(r.out, "latency tolerance"));
}

TEST(CliSmoke, SweepEmitsCsvRows) {
  const auto r = run_cli({"sweep", "--app=hpcg", "--ranks=8", "--scale=0.05",
                          "--points=4", "--dl-max-us=30", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "delta_l_ns,runtime_ns,lambda_l,rho_l"));
  // Header + the 4 grid points.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 5);
}

TEST(CliSmoke, SweepAcceptsSpaceSeparatedFlags) {
  const auto r = run_cli({"sweep", "--app", "lulesh", "--ranks", "8",
                          "--scale", "0.05", "--points", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "app: lulesh   ranks: 8"));
  EXPECT_TRUE(contains(r.out, "lambda_L"));
}

TEST(CliSmoke, TopoComparesTopologies) {
  const auto r =
      run_cli({"topo", "--app=icon", "--ranks=8", "--scale=0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "fat-tree"));
  EXPECT_TRUE(contains(r.out, "dragonfly"));
  EXPECT_TRUE(contains(r.out, "dT/dl_wire"));
  EXPECT_TRUE(contains(r.out, "l_tc"));  // per-class breakdown
}

TEST(CliSmoke, PlaceComparesStrategies) {
  const auto r =
      run_cli({"place", "--app=icon", "--ranks=8", "--scale=0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "block (default)"));
  EXPECT_TRUE(contains(r.out, "volume-greedy"));
  EXPECT_TRUE(contains(r.out, "algorithm 3"));
  EXPECT_TRUE(contains(r.out, "predicted runtime"));
}

// Applications outside the paper's Table II (npb-*, namd) must still be
// analyzable: they fall back to the network preset's default overhead.
TEST(CliSmoke, AnalyzeAppWithoutTable2Overhead) {
  const auto r = run_cli({"analyze", "--app=npb-cg", "--ranks=8",
                          "--scale=0.05", "--points=3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "base runtime T(L):"));
}

TEST(CliSmoke, AppsListsRegistry) {
  const auto r = run_cli({"apps"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(contains(r.out, "lulesh"));
  EXPECT_TRUE(contains(r.out, "icon"));
  EXPECT_TRUE(contains(r.out, "npb-cg"));
}

TEST(CliSmoke, HelpAndUsageErrors) {
  const auto help = run_cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_TRUE(contains(help.out, "usage: llamp"));

  const auto none = run_cli({});
  EXPECT_EQ(none.code, 2);
  EXPECT_TRUE(contains(none.err, "usage: llamp"));

  const auto unknown = run_cli({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_TRUE(contains(unknown.err, "unknown subcommand"));
}

// A typo'd option or stray positional must be a usage error (exit 2), not a
// silent fall-back to the default value.
TEST(CliSmoke, RejectsUnknownOptionsAndPositionals) {
  const auto typo = run_cli({"sweep", "--app=lulesh", "--pionts=5"});
  EXPECT_EQ(typo.code, 2);
  EXPECT_TRUE(contains(typo.err, "unrecognized argument '--pionts=5'"));

  const auto wrong_sub = run_cli({"place", "--app=icon", "--csv"});
  EXPECT_EQ(wrong_sub.code, 2);  // --csv is a sweep option, not place

  const auto stray = run_cli({"apps", "lulesh"});
  EXPECT_EQ(stray.code, 2);
  EXPECT_TRUE(contains(stray.err, "unrecognized argument 'lulesh'"));

  // A boolean flag must not swallow a following stray token as its value.
  const auto after_bool = run_cli({"sweep", "--app=lulesh", "--ranks=8",
                                   "--scale=0.05", "--points=2", "--csv",
                                   "extra"});
  EXPECT_EQ(after_bool.code, 2);
  EXPECT_TRUE(contains(after_bool.err, "unrecognized argument 'extra'"));
}

TEST(CliSmoke, AnalysisErrorsReportAndFail) {
  const auto bad_app = run_cli({"analyze", "--app=not-an-app", "--ranks=8"});
  EXPECT_EQ(bad_app.code, 1);
  EXPECT_TRUE(contains(bad_app.err, "llamp analyze:"));

  const auto bad_net = run_cli({"sweep", "--app=lulesh", "--net=slurm"});
  EXPECT_EQ(bad_net.code, 1);
  EXPECT_TRUE(contains(bad_net.err, "--net"));
}

}  // namespace
}  // namespace llamp
