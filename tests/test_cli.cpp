#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lp/parametric.hpp"
#include "tools/cli_driver.hpp"
#include "util/strings.hpp"

namespace llamp {
namespace {

/// Drive the unified CLI in-process and capture its streams.
struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "llamp");
  std::ostringstream out, err;
  CliResult r;
  r.code = tools::run(static_cast<int>(args.size()), args.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CliSmoke, AnalyzeSmallApp) {
  const auto r =
      run_cli({"analyze", "--app=lulesh", "--ranks=8", "--scale=0.05",
               "--points=3", "--dl-max-us=50"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "app: lulesh"));
  EXPECT_TRUE(contains(r.out, "base runtime T(L):"));
  EXPECT_TRUE(contains(r.out, "lambda_L"));
  EXPECT_TRUE(contains(r.out, "latency tolerance"));
}

TEST(CliSmoke, SweepEmitsCsvRows) {
  const auto r = run_cli({"sweep", "--app=hpcg", "--ranks=8", "--scale=0.05",
                          "--points=4", "--dl-max-us=30", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "delta_l_ns,runtime_ns,lambda_l,rho_l"));
  // Header + the 4 grid points.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 5);
}

TEST(CliSmoke, SweepAcceptsSpaceSeparatedFlags) {
  const auto r = run_cli({"sweep", "--app", "lulesh", "--ranks", "8",
                          "--scale", "0.05", "--points", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "app: lulesh   ranks: 8"));
  EXPECT_TRUE(contains(r.out, "lambda_L"));
}

TEST(CliSmoke, TopoComparesTopologies) {
  const auto r =
      run_cli({"topo", "--app=icon", "--ranks=8", "--scale=0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "fat-tree"));
  EXPECT_TRUE(contains(r.out, "dragonfly"));
  EXPECT_TRUE(contains(r.out, "dT/dl_wire"));
  EXPECT_TRUE(contains(r.out, "l_tc"));  // per-class breakdown
}

TEST(CliSmoke, PlaceComparesStrategies) {
  const auto r =
      run_cli({"place", "--app=icon", "--ranks=8", "--scale=0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "block (default)"));
  EXPECT_TRUE(contains(r.out, "volume-greedy"));
  EXPECT_TRUE(contains(r.out, "algorithm 3"));
  EXPECT_TRUE(contains(r.out, "predicted runtime"));
}

// Applications outside the paper's Table II (npb-*, namd) must still be
// analyzable: they fall back to the network preset's default overhead.
TEST(CliSmoke, AnalyzeAppWithoutTable2Overhead) {
  const auto r = run_cli({"analyze", "--app=npb-cg", "--ranks=8",
                          "--scale=0.05", "--points=3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "base runtime T(L):"));
}

TEST(CliSmoke, AppsListsRegistry) {
  const auto r = run_cli({"apps"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(contains(r.out, "lulesh"));
  EXPECT_TRUE(contains(r.out, "icon"));
  EXPECT_TRUE(contains(r.out, "npb-cg"));
}

TEST(CliSmoke, HelpAndUsageErrors) {
  const auto help = run_cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_TRUE(contains(help.out, "usage: llamp"));

  // A bare `llamp` is a question, not a mistake: usage on stdout, exit 0.
  const auto none = run_cli({});
  EXPECT_EQ(none.code, 0);
  EXPECT_TRUE(contains(none.out, "usage: llamp"));
  EXPECT_TRUE(none.err.empty());

  // So is `llamp <sub> --help`, even next to flags the subcommand would
  // otherwise reject.
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"sweep", "--help"},
           {"campaign", "-h"},
           {"batch", "--help"},
           {"analyze", "--points=1", "--help"},
           {"mc", "--no-such-flag=1", "--help"},
       }) {
    const auto r = run_cli(args);
    EXPECT_EQ(r.code, 0) << args[0];
    EXPECT_TRUE(contains(r.out, "usage: llamp"));
  }

  const auto unknown = run_cli({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_TRUE(contains(unknown.err, "unknown subcommand"));
}

TEST(CliSmoke, VersionFlag) {
  for (const char* spelling : {"--version", "version"}) {
    const auto r = run_cli({spelling});
    EXPECT_EQ(r.code, 0);
    EXPECT_TRUE(contains(r.out, "llamp 0.6"));
    // Build metadata rides along: "llamp 0.6.0 (gcc 13.2.0, Release)".
    // /healthz reuses these fields verbatim (pinned in test_serve.cpp).
    EXPECT_TRUE(contains(r.out, "("));
    EXPECT_TRUE(contains(r.out, ", "));
    EXPECT_TRUE(r.err.empty());
  }
}

// --format=json consumers must never have to scrape stderr: errors are
// additionally emitted as one structured {"error": ...} object on stdout,
// with exit codes unchanged.
TEST(CliSmoke, JsonModeEmitsStructuredErrors) {
  const auto usage = run_cli(
      {"sweep", "--app=lulesh", "--points=1", "--format=json"});
  EXPECT_EQ(usage.code, 2);
  EXPECT_TRUE(contains(usage.out, "\"error\""));
  EXPECT_TRUE(contains(usage.out, "\"kind\": \"usage\""));
  EXPECT_TRUE(contains(usage.out, "\"subcommand\": \"sweep\""));
  EXPECT_TRUE(contains(usage.err, "need --points >= 2"));

  const auto analysis = run_cli(
      {"analyze", "--app=not-an-app", "--format=json"});
  EXPECT_EQ(analysis.code, 1);
  EXPECT_TRUE(contains(analysis.out, "\"kind\": \"analysis\""));

  const auto typo = run_cli({"sweep", "--pionts=5", "--format=json"});
  EXPECT_EQ(typo.code, 2);
  EXPECT_TRUE(contains(typo.out, "unrecognized argument"));

  // Without --format=json, stdout stays clean.
  const auto text = run_cli({"sweep", "--app=lulesh", "--points=1"});
  EXPECT_EQ(text.code, 2);
  EXPECT_TRUE(text.out.empty());
}

// A typo'd option or stray positional must be a usage error (exit 2), not a
// silent fall-back to the default value.
TEST(CliSmoke, RejectsUnknownOptionsAndPositionals) {
  const auto typo = run_cli({"sweep", "--app=lulesh", "--pionts=5"});
  EXPECT_EQ(typo.code, 2);
  EXPECT_TRUE(contains(typo.err, "unrecognized argument '--pionts=5'"));

  const auto wrong_sub = run_cli({"place", "--app=icon", "--csv"});
  EXPECT_EQ(wrong_sub.code, 2);  // --csv is a sweep option, not place

  const auto stray = run_cli({"apps", "lulesh"});
  EXPECT_EQ(stray.code, 2);
  EXPECT_TRUE(contains(stray.err, "unrecognized argument 'lulesh'"));

  // A boolean flag must not swallow a following stray token as its value.
  const auto after_bool = run_cli({"sweep", "--app=lulesh", "--ranks=8",
                                   "--scale=0.05", "--points=2", "--csv",
                                   "extra"});
  EXPECT_EQ(after_bool.code, 2);
  EXPECT_TRUE(contains(after_bool.err, "unrecognized argument 'extra'"));
}

TEST(CliSmoke, CampaignEmitsGridInEveryFormat) {
  const std::vector<const char*> base = {
      "campaign", "--apps=lulesh,hpcg", "--ranks=8",   "--scales=0.02",
      "--topos=none",                   "--points=3",  "--dl-max-us=20"};
  auto with_format = [&](const char* fmt) {
    auto args = base;
    args.push_back(fmt);
    return run_cli(args);
  };
  const auto table = run_cli(base);
  EXPECT_EQ(table.code, 0) << table.err;
  EXPECT_TRUE(contains(table.out, "campaign: 2 scenarios"));
  EXPECT_TRUE(contains(table.out, "lulesh"));
  EXPECT_TRUE(contains(table.out, "hpcg"));

  const auto csv = with_format("--format=csv");
  EXPECT_EQ(csv.code, 0) << csv.err;
  EXPECT_TRUE(contains(
      csv.out,
      "app,ranks,scale,topology,config,delta_l_ns,runtime_ns,lambda_l,rho_l"));
  // Header + 2 scenarios x 3 points.
  EXPECT_EQ(std::count(csv.out.begin(), csv.out.end(), '\n'), 7);

  const auto json = with_format("--format=json");
  EXPECT_EQ(json.code, 0) << json.err;
  EXPECT_TRUE(contains(json.out, "\"app\": \"lulesh\""));
  EXPECT_TRUE(contains(json.out, "\"topology\": \"none\""));
}

// The campaign determinism wall (the engine's core contract): the same grid
// must produce byte-identical output under --threads=1 and --threads=8, in
// every output format.  This is the acceptance grid of ISSUE 2: 3 apps x
// 2 rank counts x 2 topologies.
TEST(CliCampaignDeterminism, ThreadCountNeverChangesTheBytes) {
  for (const char* fmt : {"--format=csv", "--format=json", "--format=table"}) {
    auto run_with = [&](const char* threads) {
      return run_cli({"campaign", "--apps=lulesh,hpcg,milc", "--ranks=8,27",
                      "--topos=none,fat-tree", "--scales=0.02", "--points=3",
                      "--dl-max-us=20", fmt, threads});
    };
    const auto serial = run_with("--threads=1");
    const auto parallel = run_with("--threads=8");
    ASSERT_EQ(serial.code, 0) << serial.err;
    ASSERT_EQ(parallel.code, 0) << parallel.err;
    EXPECT_FALSE(serial.out.empty());
    EXPECT_EQ(serial.out, parallel.out) << "format " << fmt;
  }
}

// Degenerate grid specs must exit 2 with a clear message — never UB, a
// crash, or silent empty output.
TEST(CliGridEdgeCases, DegenerateGridsAreUsageErrors) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"sweep", "--app=lulesh", "--points=0"},
           {"sweep", "--app=lulesh", "--points=1"},
           {"analyze", "--app=lulesh", "--points=1"},
           {"campaign", "--apps=lulesh", "--points=1"},
           {"sweep", "--app=lulesh", "--dl-max-us=0"},
           {"campaign", "--apps=lulesh", "--dl-max-us=0"},
           {"campaign", "--apps=lulesh", "--dl-max-us=-5"},
           {"campaign", "--apps="},
           {"campaign", "--apps=lulesh", "--ranks="},
           {"campaign", "--apps=lulesh", "--topos=torus"},
           {"campaign", "--apps=lulesh", "--nets=slurm"},
           {"campaign", "--apps=lulesh", "--ranks=abc"},
           {"campaign", "--apps=lulesh", "--L-list=-5"},
           {"campaign", "--apps=lulesh", "--scales=inf"},
           {"sweep", "--app=lulesh", "--scale=inf"},
           {"sweep", "--app=lulesh", "--scale=0"},
           {"analyze", "--app=lulesh", "--scale=-1"},
           {"campaign", "--apps=lulesh", "--S=-5"},
           {"sweep", "--app=lulesh", "--S=-5"},
           {"campaign", "--apps=hpcg", "--ranks=512", "--topos=fat-tree"},
           {"campaign", "--apps=lulesh", "--topos=fat-tree", "--ft-radix=0"},
           {"sweep", "--app=lulesh", "--points=abc"},
           {"sweep", "--app=lulesh", "--points=4294967298"},
           {"campaign", "--apps=lulesh", "--ranks=4294967304"},
           {"analyze", "--app=lulesh", "--dl-max-us=abc"},
           {"sweep", "--app=lulesh", "--format=yaml"},
       }) {
    const auto r = run_cli(args);
    EXPECT_EQ(r.code, 2) << args[0] << ' ' << args[1];
    EXPECT_FALSE(r.err.empty());
  }
}

// --S is graph-shaping (it selects eager vs rendezvous per message), so the
// same scenario must forecast identically through sweep and campaign.
TEST(CliSmoke, RendezvousThresholdShapesTheGraphConsistently) {
  const auto sweep =
      run_cli({"sweep", "--app=lulesh", "--ranks=8", "--scale=0.02",
               "--points=2", "--dl-max-us=10", "--S=1024", "--format=csv"});
  const auto camp = run_cli({"campaign", "--apps=lulesh", "--ranks=8",
                             "--scales=0.02", "--points=2", "--dl-max-us=10",
                             "--S=1024", "--format=csv"});
  ASSERT_EQ(sweep.code, 0) << sweep.err;
  ASSERT_EQ(camp.code, 0) << camp.err;
  // The sweep row (delta,runtime,lambda,rho) must be the tail of the
  // campaign row (app,ranks,scale,topology,config,delta,runtime,...).
  const auto last_line = [](const std::string& s) {
    const auto end = s.find_last_not_of('\n');
    const auto start = s.rfind('\n', end);
    return s.substr(start + 1, end - start);
  };
  const std::string sweep_row = last_line(sweep.out);
  const std::string camp_row = last_line(camp.out);
  ASSERT_GE(camp_row.size(), sweep_row.size());
  EXPECT_EQ(camp_row.substr(camp_row.size() - sweep_row.size()), sweep_row);
}

TEST(CliSmoke, SweepFormatFlagMatchesCsvShorthand) {
  const std::vector<const char*> common = {"sweep", "--app=hpcg", "--ranks=8",
                                           "--scale=0.02", "--points=3"};
  auto shorthand = common;
  shorthand.push_back("--csv");
  auto explicit_fmt = common;
  explicit_fmt.push_back("--format=csv");
  EXPECT_EQ(run_cli(shorthand).out, run_cli(explicit_fmt).out);

  auto json = common;
  json.push_back("--format=json");
  const auto r = run_cli(json);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "\"delta_l_ns\": "));
}

TEST(CliSmoke, AnalyzeJsonIsAStructuredReport) {
  const auto r = run_cli({"analyze", "--app=lulesh", "--ranks=8",
                          "--scale=0.02", "--points=3", "--format=json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "\"base_runtime_ns\": "));
  EXPECT_TRUE(contains(r.out, "\"bands\": "));
  EXPECT_TRUE(contains(r.out, "\"critical_latencies_ns\": "));
}

// ---------------------------------------------------------------------------
// The mc subcommand and the uniform --seed contract: on every stochastic
// CLI path (mc, the campaign mc axis, the campaign emulator probe),
// identical seeds reproduce identical bytes and the thread count never
// changes them; a different seed re-rolls the noise.
// ---------------------------------------------------------------------------

TEST(CliMc, SmokeTableReport) {
  const auto r = run_cli({"mc", "--app=lulesh", "--ranks=8", "--scale=0.05",
                          "--points=3", "--dl-max-us=50", "--samples=8",
                          "--sigma-L=0.05"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "app: lulesh"));
  EXPECT_TRUE(contains(r.out, "mc: 8 samples"));
  EXPECT_TRUE(contains(r.out, "lambda_L"));
  EXPECT_TRUE(contains(r.out, "q95"));
  EXPECT_TRUE(contains(r.out, "tol 1%"));
}

TEST(CliMc, EmitsEveryFormat) {
  const std::vector<const char*> common = {
      "mc",           "--app=lulesh",  "--ranks=8",
      "--scale=0.02", "--points=3",    "--dl-max-us=20",
      "--samples=4",  "--sigma-L=0.1", "--bands=1"};
  auto with_format = [&](const char* fmt) {
    auto args = common;
    args.push_back(fmt);
    return run_cli(args);
  };
  const auto csv = with_format("--format=csv");
  EXPECT_EQ(csv.code, 0) << csv.err;
  EXPECT_TRUE(contains(
      csv.out, "metric,n,unbounded,mean,stddev,min,q05,median,q95,max"));
  // Header + 3 runtime rows + lambda + rho + 1 band.
  EXPECT_EQ(std::count(csv.out.begin(), csv.out.end(), '\n'), 7);

  const auto json = with_format("--format=json");
  EXPECT_EQ(json.code, 0) << json.err;
  EXPECT_TRUE(contains(json.out, "\"metric\": \"lambda_l\""));
  EXPECT_TRUE(contains(json.out, "\"mean\": "));
  // The JSON config echo is self-describing bench provenance: it records
  // whether the batched sample-axis kernel engaged and its lane count.
  // L-only jitter keeps the shared operating point, so this run batches.
  EXPECT_TRUE(contains(json.out, "\"batched\": true"));
  EXPECT_TRUE(contains(
      json.out,
      strformat("\"batch_width\": %d",
                static_cast<int>(llamp::lp::kBatchWidth))));
}

TEST(CliMc, JsonConfigEchoReportsScalarFallback) {
  // Edge noise forces per-sample lowering, so the echo must say so.
  const auto json = run_cli({"mc", "--app=lulesh", "--ranks=8",
                             "--scale=0.02", "--points=3", "--dl-max-us=20",
                             "--samples=4", "--sigma-L=0.1",
                             "--edge-sigma=0.003", "--format=json"});
  EXPECT_EQ(json.code, 0) << json.err;
  EXPECT_TRUE(contains(json.out, "\"batched\": false"));
}

TEST(CliMc, SeedReproducesIdenticalBytes) {
  const std::vector<const char*> base = {
      "mc",           "--app=lulesh",    "--ranks=8",
      "--scale=0.02", "--points=3",      "--dl-max-us=20",
      "--samples=16", "--sigma-L=0.05",  "--edge-sigma=0.003",
      "--seed=7",     "--format=csv"};
  const auto a = run_cli(base);
  const auto b = run_cli(base);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);

  auto reseeded = base;
  reseeded[9] = "--seed=8";
  const auto c = run_cli(reseeded);
  ASSERT_EQ(c.code, 0) << c.err;
  EXPECT_NE(a.out, c.out);
}

TEST(CliMc, ThreadCountNeverChangesTheBytes) {
  for (const char* fmt : {"--format=csv", "--format=json", "--format=table"}) {
    auto run_with = [&](const char* threads) {
      return run_cli({"mc", "--app=hpcg", "--ranks=8", "--scale=0.02",
                      "--points=3", "--dl-max-us=20", "--samples=24",
                      "--sigma-L=0.05", "--sigma-o=0.02",
                      "--edge-sigma=0.003", "--seed=5", fmt, threads});
    };
    const auto serial = run_with("--threads=1");
    const auto parallel = run_with("--threads=8");
    ASSERT_EQ(serial.code, 0) << serial.err;
    ASSERT_EQ(parallel.code, 0) << parallel.err;
    EXPECT_FALSE(serial.out.empty());
    EXPECT_EQ(serial.out, parallel.out) << "format " << fmt;
  }
}

TEST(CliMc, UsageErrors) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"mc", "--app=lulesh", "--samples=0"},
           {"mc", "--app=lulesh", "--samples=-3"},
           {"mc", "--app=lulesh", "--seed=-1"},
           {"mc", "--app=lulesh", "--dist-L=gaussian:1,2"},
           {"mc", "--app=lulesh", "--dist-L="},
           {"mc", "--app=lulesh", "--dist-L=uniform:5,1"},
           {"mc", "--app=lulesh", "--sigma-L=-0.1"},
           {"mc", "--app=lulesh", "--edge-sigma=-0.5"},
           {"mc", "--app=lulesh", "--edge-bias=-2"},
           {"mc", "--app=lulesh", "--bands=-1"},
           {"mc", "--app=lulesh", "--points=1"},
           {"mc", "--app=lulesh", "--nope=1"},
       }) {
    const auto r = run_cli(args);
    EXPECT_EQ(r.code, 2) << args[2] << " -> " << r.err;
    EXPECT_FALSE(r.err.empty());
  }
}

TEST(CliMc, DistFlagsOverrideSigmas) {
  // An explicit degenerate --dist-L beats --sigma-L, so the run is exactly
  // the deterministic analysis repeated; n=1 keeps it cheap.
  const auto pinned = run_cli({"mc", "--app=lulesh", "--ranks=8",
                               "--scale=0.02", "--points=2",
                               "--dl-max-us=20", "--samples=1",
                               "--dist-L=base", "--format=csv"});
  ASSERT_EQ(pinned.code, 0) << pinned.err;
  // Zero-variance run: stddev column is exactly 0 on every row.
  EXPECT_TRUE(contains(pinned.out, ",0,"));
}

TEST(CliCampaignStochastic, McAxisAddsColumnsAndKeepsDeterminism) {
  auto run_with = [&](const char* threads) {
    return run_cli({"campaign", "--apps=lulesh,hpcg", "--ranks=8",
                    "--scales=0.02", "--points=3", "--dl-max-us=20",
                    "--mc-samples=12", "--mc-sigma-L=0.05",
                    "--mc-edge-sigma=0.003", "--seed=3", "--format=csv",
                    threads});
  };
  const auto serial = run_with("--threads=1");
  const auto parallel = run_with("--threads=8");
  ASSERT_EQ(serial.code, 0) << serial.err;
  EXPECT_TRUE(contains(serial.out,
                       "runtime_mean_ns,runtime_sd_ns,runtime_q05_ns,"
                       "runtime_q95_ns"));
  EXPECT_EQ(serial.out, parallel.out);

  // Without the axis the schema is unchanged (golden files pin it too).
  const auto plain = run_cli({"campaign", "--apps=lulesh", "--ranks=8",
                              "--scales=0.02", "--points=3",
                              "--dl-max-us=20", "--format=csv"});
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_FALSE(contains(plain.out, "runtime_mean_ns"));
}

TEST(CliCampaignStochastic, EmulatorProbeIsSeedStable) {
  auto run_with = [&](const char* seed, const char* threads) {
    return run_cli({"campaign", "--apps=lulesh,hpcg", "--ranks=8",
                    "--scales=0.02", "--points=3", "--dl-max-us=20",
                    "--probe=emulator", "--probe-runs=2", seed, threads,
                    "--format=csv"});
  };
  const auto a = run_with("--seed=11", "--threads=1");
  const auto b = run_with("--seed=11", "--threads=8");
  const auto c = run_with("--seed=12", "--threads=1");
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_TRUE(contains(a.out, "measured_ns"));
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out, c.out);
}

TEST(CliCampaignStochastic, UsageErrors) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"campaign", "--apps=lulesh", "--probe=tarot"},
           {"campaign", "--apps=lulesh", "--probe=emulator",
            "--probe-runs=0"},
           {"campaign", "--apps=lulesh", "--probe=emulator",
            "--noise-sigma=-1"},
           {"campaign", "--apps=lulesh", "--mc-samples=-1"},
           {"campaign", "--apps=lulesh", "--mc-samples=4",
            "--mc-sigma-L=-0.5"},
           {"campaign", "--apps=lulesh", "--topos=fat-tree",
            "--mc-samples=4"},
           {"campaign", "--apps=lulesh", "--seed=-2"},
           // Knobs must never be silently ignored: a bad value is a usage
           // error even when its enabling flag is off, and a well-formed
           // knob without its enabling flag is an orphan, not a no-op.
           {"campaign", "--apps=lulesh", "--mc-sigma-L=-5"},
           {"campaign", "--apps=lulesh", "--mc-sigma-L=0.05"},
           {"campaign", "--apps=lulesh", "--mc-edge-sigma=0.01"},
           {"campaign", "--apps=lulesh", "--probe-runs=0"},
           {"campaign", "--apps=lulesh", "--probe-runs=3"},
           {"campaign", "--apps=lulesh", "--noise-sigma=0.1"},
       }) {
    const auto r = run_cli(args);
    EXPECT_EQ(r.code, 2) << r.err;
    EXPECT_FALSE(r.err.empty());
  }
}

// ---------------------------------------------------------------------------
// The batch subcommand: JSONL requests in, JSONL results out, input order,
// byte-deterministic whatever --threads.
// ---------------------------------------------------------------------------

/// A self-deleting JSONL request file under the test's temp directory.
struct JsonlFile {
  std::string path;
  explicit JsonlFile(const std::string& contents) {
    path = testing::TempDir() + "llamp_batch_test_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter()++) + ".jsonl";
    std::ofstream f(path);
    f << contents;
  }
  ~JsonlFile() { std::remove(path.c_str()); }
  static int& counter() {
    static int n = 0;
    return n;
  }
};

const char* kMixedBatch =
    "{\"op\": \"sweep\", \"app\": {\"name\": \"lulesh\", \"scale\": 0.02}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n"
    "{\"op\": \"analyze\", \"app\": {\"name\": \"hpcg\", \"scale\": 0.02}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n"
    "{\"op\": \"mc\", \"app\": {\"name\": \"lulesh\", \"scale\": 0.02}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}, \"samples\": 4, "
    "\"sigma_L\": 0.05, \"seed\": 7}\n"
    "{\"op\": \"campaign\", \"apps\": [\"lulesh\", \"hpcg\"], \"scales\": "
    "[0.02], \"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n"
    "{\"op\": \"topo\", \"app\": {\"name\": \"icon\", \"scale\": 0.02}}\n"
    "{\"op\": \"place\", \"app\": {\"name\": \"icon\", \"scale\": 0.02}}\n";

TEST(CliBatch, ExecutesJsonlAndIsThreadCountInvariant) {
  const JsonlFile file(kMixedBatch);
  auto run_with = [&](const char* threads) {
    return run_cli({"batch", "--file", file.path.c_str(), threads});
  };
  const auto serial = run_with("--threads=1");
  const auto parallel = run_with("--threads=8");
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(parallel.code, 0) << parallel.err;
  EXPECT_FALSE(serial.out.empty());
  EXPECT_EQ(serial.out, parallel.out);
  // One result line per request, ids in input order.
  EXPECT_EQ(std::count(serial.out.begin(), serial.out.end(), '\n'), 6);
  EXPECT_TRUE(contains(serial.out, "{\"id\": 0, \"op\": \"sweep\""));
  EXPECT_TRUE(contains(serial.out, "{\"id\": 5, \"op\": \"place\""));
}

TEST(CliBatch, FailedLinesAreInBandAndExitCodeFlagsThem) {
  const JsonlFile file(
      "{\"op\": \"sweep\", \"app\": {\"name\": \"lulesh\", \"scale\": "
      "0.02}, \"grid\": {\"dl_max_us\": 20, \"points\": 3}}\n"
      "{\"op\": \"sweep\", \"grid\": {\"points\": 1}}\n");
  const auto r = run_cli({"batch", "--file", file.path.c_str()});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.out, "\"result\""));
  EXPECT_TRUE(contains(r.out, "\"error\""));
  EXPECT_TRUE(contains(r.out, "need --points >= 2"));
}

TEST(CliBatch, UsageErrors) {
  const auto missing = run_cli({"batch", "--file=/no/such/file.jsonl"});
  EXPECT_EQ(missing.code, 2);
  EXPECT_TRUE(contains(missing.err, "cannot open"));

  const JsonlFile file("");
  const auto stray = run_cli({"batch", "--file", file.path.c_str(),
                              "--format=json"});
  EXPECT_EQ(stray.code, 2);  // batch output is always JSONL; no --format

  const auto empty = run_cli({"batch", "--file", file.path.c_str()});
  EXPECT_EQ(empty.code, 0);
  EXPECT_TRUE(empty.out.empty());
}

TEST(CliSmoke, AnalysisErrorsReportAndFail) {
  const auto bad_app = run_cli({"analyze", "--app=not-an-app", "--ranks=8"});
  EXPECT_EQ(bad_app.code, 1);
  EXPECT_TRUE(contains(bad_app.err, "llamp analyze:"));

  const auto bad_net = run_cli({"sweep", "--app=lulesh", "--net=slurm"});
  EXPECT_EQ(bad_net.code, 1);
  EXPECT_TRUE(contains(bad_net.err, "--net"));
}

}  // namespace
}  // namespace llamp
