#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace llamp::sim {
namespace {

TEST(TwoRankEager, MatchesEquationTwoClosedForm) {
  // Fig. 4a with arbitrary constants: T = max(c0+o+c1, c2+o+c3,
  // c0+o+L+(s-1)G+o+c3).
  graph::Graph g(2);
  const auto c0 = g.add_calc(0, 1'000.0);
  const auto s = g.add_send(0, 1, 4);
  const auto c1 = g.add_calc(0, 1'000.0);
  const auto c2 = g.add_calc(1, 500.0);
  const auto r = g.add_recv(1, 0, 4);
  const auto c3 = g.add_calc(1, 1'000.0);
  g.add_local_edge(c0, s);
  g.add_local_edge(s, c1);
  g.add_local_edge(c2, r);
  g.add_local_edge(r, c3);
  g.add_comm_edge(s, r, false);
  g.finalize();

  loggops::Params p;
  p.o = 100.0;
  p.G = 5.0;
  p.S = 1 << 20;
  Simulator sim(g);
  for (const double L : {0.0, 385.0, 1'000.0, 50'000.0}) {
    p.L = L;
    const double expected =
        std::max({1'000.0 + 100.0 + 1'000.0, 500.0 + 100.0 + 1'000.0,
                  1'000.0 + 100.0 + L + 3 * 5.0 + 100.0 + 1'000.0});
    EXPECT_DOUBLE_EQ(sim.run(p).makespan, expected) << "L=" << L;
  }
}

TEST(TwoRankEager, LateReceiverOverlapsWire) {
  // Receiver busy past the message arrival: completion = recv_ready + o.
  graph::Graph g(2);
  const auto s = g.add_send(0, 1, 4);
  const auto c2 = g.add_calc(1, 1'000'000.0);
  const auto r = g.add_recv(1, 0, 4);
  g.add_local_edge(c2, r);
  g.add_comm_edge(s, r, false);
  g.finalize();
  loggops::Params p;
  p.L = 10.0;
  p.o = 100.0;
  p.G = 0.0;
  Simulator sim(g);
  EXPECT_DOUBLE_EQ(sim.run(p).makespan, 1'000'000.0 + 100.0);
}

TEST(TwoRankRendezvous, MatchesHandshakeFormulas) {
  // Appendix B: with ts/tr the issue instants and
  // tm = max(ts + o + L, tr + o) the handshake match,
  //   t_r' = tm + 2L + B + o  and  t_s' = t_r' + o.
  graph::Graph g(2);
  const std::uint64_t bytes = 1 << 20;
  const auto cs = g.add_calc(0, 2'000.0);  // ts = 2000
  const auto s = g.add_send(0, 1, bytes);
  const auto ws = g.add_calc(0, 0.0);  // sender-side completion anchor
  const auto cr = g.add_calc(1, 500.0);  // tr = 500
  const auto r = g.add_recv(1, 0, bytes);
  g.add_local_edge(cs, s);
  g.add_local_edge(s, ws);
  g.add_issue_edge(cr, r, /*through_post=*/false);
  g.add_comm_edge(s, r, true);
  g.add_send_completion_edge(r, ws);
  g.finalize();

  loggops::Params p;
  p.L = 3'000.0;
  p.o = 100.0;
  p.G = 0.001;
  p.S = 1024;  // rendezvous
  Simulator sim(g);
  const Result res = sim.run(p);
  const double B = (static_cast<double>(bytes) - 1) * p.G;
  const double tm = std::max(2'000.0 + p.o + p.L, 500.0 + p.o);
  const double t_r = tm + 2 * p.L + B + p.o;
  const double t_s = t_r + p.o;
  EXPECT_NEAR(res.finish[r], t_r, 1e-6);
  EXPECT_NEAR(res.finish[ws], t_s, 1e-6);
  EXPECT_NEAR(res.makespan, t_s, 1e-6);
}

TEST(RunningExample, KnownRuntimes) {
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  Simulator sim(g);
  p.L = 0.0;
  EXPECT_DOUBLE_EQ(sim.run(p).makespan, 1'500.0);
  p.L = 385.0;
  EXPECT_DOUBLE_EQ(sim.run(p).makespan, 1'500.0);
  p.L = 500.0;
  EXPECT_DOUBLE_EQ(sim.run(p).makespan, 1'615.0);
}

TEST(CriticalPath, CountsMessagesAndLatencyUnits) {
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  Simulator sim(g);
  p.L = 500.0;  // comm edge on the critical path
  auto res = sim.run(p);
  auto info = sim.critical_path(res);
  EXPECT_DOUBLE_EQ(info.lambda_L, 1.0);
  EXPECT_EQ(info.messages, 1u);
  EXPECT_DOUBLE_EQ(info.g_coefficient, 3.0);  // (4-1) bytes
  p.L = 100.0;  // receiver chain dominates
  res = sim.run(p);
  info = sim.critical_path(res);
  EXPECT_DOUBLE_EQ(info.lambda_L, 0.0);
  EXPECT_EQ(info.messages, 0u);
}

TEST(WireModelOverride, PerPairLatencies) {
  class TwoTier final : public loggops::WireModel {
   public:
    TimeNs latency(int a, int b) const override {
      return (a + b == 1) ? 50'000.0 : 10.0;
    }
    double gap_per_byte(int, int) const override { return 0.0; }
  };
  graph::Graph g(2);
  const auto s = g.add_send(0, 1, 8);
  const auto r = g.add_recv(1, 0, 8);
  g.add_comm_edge(s, r, false);
  g.finalize();
  loggops::Params p;
  p.o = 0.0;
  Simulator sim(g);
  EXPECT_DOUBLE_EQ(sim.run(p, TwoTier{}).makespan, 50'000.0);
}

TEST(Validation, RejectsUnfinalizedGraphAndForeignResults) {
  graph::Graph g(1);
  (void)g.add_calc(0, 1.0);
  EXPECT_THROW(Simulator{g}, SimError);
  g.finalize();
  Simulator sim(g);
  Result foreign;  // wrong arity
  EXPECT_THROW((void)sim.critical_path(foreign), SimError);
}

TEST(Determinism, RepeatedRunsIdentical) {
  testing::RandomProgramConfig cfg;
  cfg.seed = 77;
  const auto t = testing::random_trace(cfg);
  // Build via schedgen in the integration tests; here hand-check on the
  // running example only.
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  p.L = 123.0;
  Simulator sim(g);
  EXPECT_DOUBLE_EQ(sim.run(p).makespan, sim.run(p).makespan);
}

}  // namespace
}  // namespace llamp::sim
