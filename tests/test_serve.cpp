// The serve-subsystem wall (DESIGN.md §8): the from-scratch HTTP/1.1
// parser, the poll-loop server, and the engine route table.  The headline
// contract is wire determinism — identical request body bytes produce
// identical response body bytes whatever the connection interleaving,
// keep-alive reuse, engine pool size, or prior cache state — plus the
// robustness contract that malformed input maps to precise 4xx statuses
// and never kills the daemon.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace llamp {
namespace {

using serve::Client;
using serve::HttpLimits;
using serve::HttpRequest;
using serve::HttpResponse;
using serve::ParseResult;
using serve::Server;

// ---------------------------------------------------------------------------
// Parser: framing, incrementality, limits, and the 4xx error map.
// ---------------------------------------------------------------------------

ParseResult parse(std::string_view in) {
  return serve::parse_http_request(in, HttpLimits{});
}

TEST(HttpParser, SimpleGetParses) {
  const std::string in =
      "GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
  const ParseResult r = parse(in);
  ASSERT_EQ(r.status, ParseResult::Status::kRequest);
  EXPECT_EQ(r.consumed, in.size());
  EXPECT_EQ(r.request.method, "GET");
  EXPECT_EQ(r.request.target, "/healthz");
  EXPECT_EQ(r.request.version_minor, 1);
  EXPECT_TRUE(r.request.body.empty());
  ASSERT_NE(r.request.header("host"), nullptr);  // names are lowercased
  EXPECT_EQ(*r.request.header("host"), "x");
  EXPECT_EQ(r.request.header("Host"), nullptr);
}

TEST(HttpParser, IncrementalFeedNeverConsumesEarly) {
  const std::string in =
      "POST /v1/analyze HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  // Every strict prefix must report kNeedMore with nothing consumed: the
  // connection loop re-invokes on the same growing buffer.
  for (std::size_t n = 0; n < in.size(); ++n) {
    const ParseResult r = parse(std::string_view(in).substr(0, n));
    EXPECT_EQ(r.status, ParseResult::Status::kNeedMore) << "prefix " << n;
    EXPECT_EQ(r.consumed, 0u);
  }
  const ParseResult r = parse(in);
  ASSERT_EQ(r.status, ParseResult::Status::kRequest);
  EXPECT_EQ(r.consumed, in.size());
  EXPECT_EQ(r.request.body, "{}");
}

TEST(HttpParser, PipelinedRequestsConsumeExactly) {
  const std::string one = "GET /metrics HTTP/1.1\r\n\r\n";
  const std::string two =
      "POST /v1/mc HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  std::string in = one + two;
  const ParseResult a = parse(in);
  ASSERT_EQ(a.status, ParseResult::Status::kRequest);
  EXPECT_EQ(a.consumed, one.size());
  in.erase(0, a.consumed);
  const ParseResult b = parse(in);
  ASSERT_EQ(b.status, ParseResult::Status::kRequest);
  EXPECT_EQ(b.consumed, two.size());
  EXPECT_EQ(b.request.target, "/v1/mc");
  EXPECT_EQ(b.request.body, "abcd");
}

TEST(HttpParser, BareLfLineEndingsTolerated) {
  const ParseResult r =
      parse("POST /x HTTP/1.1\nContent-Length: 1\nHost: y\n\nZ");
  ASSERT_EQ(r.status, ParseResult::Status::kRequest);
  EXPECT_EQ(r.request.body, "Z");
  ASSERT_NE(r.request.header("host"), nullptr);
  EXPECT_EQ(*r.request.header("host"), "y");
}

TEST(HttpParser, HeaderValuesTrimOptionalWhitespace) {
  const ParseResult r = parse("GET / HTTP/1.1\r\nX-K:   spaced \t\r\n\r\n");
  ASSERT_EQ(r.status, ParseResult::Status::kRequest);
  ASSERT_NE(r.request.header("x-k"), nullptr);
  EXPECT_EQ(*r.request.header("x-k"), "spaced");
}

struct BadCase {
  const char* name;
  std::string in;
  int status;
};

TEST(HttpParser, ErrorMap) {
  const std::vector<BadCase> cases = {
      {"garbage request line", "this is not http\r\n\r\n", 400},
      {"missing version", "GET /\r\n\r\n", 400},
      {"bad version", "GET / HTTP/2.0\r\n\r\n", 400},
      {"empty method", " / HTTP/1.1\r\n\r\n", 400},
      {"non-origin-form target", "GET example.com HTTP/1.1\r\n\r\n", 400},
      {"control byte in method", "G\x01T / HTTP/1.1\r\n\r\n", 400},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"control byte in header value",
       "GET / HTTP/1.1\r\nX: a\x01b\r\n\r\n", 400},
      {"transfer-encoding rejected",
       "POST /v1/analyze HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400},
      {"post without content-length", "POST /v1/analyze HTTP/1.1\r\n\r\n",
       400},
      {"non-numeric content-length",
       "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
      {"negative content-length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"conflicting duplicate content-length",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
       400},
      {"oversized declared body",
       "POST / HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n", 413},
  };
  for (const BadCase& c : cases) {
    const ParseResult r = parse(c.in);
    EXPECT_EQ(r.status, ParseResult::Status::kError) << c.name;
    EXPECT_EQ(r.error_status, c.status) << c.name;
    EXPECT_FALSE(r.error_message.empty()) << c.name;
  }
}

TEST(HttpParser, OversizedBodyRejectedBeforeBuffering) {
  // The 413 must fire from the headers alone — the body bytes need never
  // arrive, so a hostile upload cannot make the server buffer 5 MB.
  const ParseResult r =
      parse("POST / HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n");
  EXPECT_EQ(r.status, ParseResult::Status::kError);
  EXPECT_EQ(r.error_status, 413);
}

TEST(HttpParser, OversizedHeaderSectionRejected) {
  std::string in = "GET / HTTP/1.1\r\n";
  while (in.size() <= HttpLimits{}.max_header_bytes) {
    in += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  // No terminating blank line: the parser must reject on size, not wait
  // for a header end that may never come.
  const ParseResult r = parse(in);
  EXPECT_EQ(r.status, ParseResult::Status::kError);
  EXPECT_EQ(r.error_status, 400);
}

TEST(HttpParser, KeepAliveResolution) {
  const auto req_of = [](const std::string& in) {
    const ParseResult r = parse(in);
    EXPECT_EQ(r.status, ParseResult::Status::kRequest);
    return r.request;
  };
  EXPECT_TRUE(req_of("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      req_of("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
  EXPECT_FALSE(req_of("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_TRUE(
      req_of("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
  // Connection is an option list and case-insensitive.
  EXPECT_FALSE(
      req_of("GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n").keep_alive());
}

TEST(HttpSerializer, ResponseBytesArePinned) {
  HttpResponse res;
  res.status = 200;
  res.body = "{\"x\": 1}\n";
  const std::string expected =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 9\r\n"
      "Connection: keep-alive\r\n"
      "\r\n"
      "{\"x\": 1}\n";
  // Byte-pinned, twice: serialization is deterministic (no Date header,
  // no allocation-dependent ordering).
  EXPECT_EQ(serve::serialize_response(res), expected);
  EXPECT_EQ(serve::serialize_response(res), expected);

  HttpResponse err;
  err.status = 503;
  err.keep_alive = false;
  err.extra_headers.push_back("Retry-After: 1");
  err.body = serve::error_body("http", "busy");
  const std::string bytes = serve::serialize_response(err);
  EXPECT_NE(bytes.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(bytes.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("{\"error\": {\"kind\": \"http\", "
                       "\"message\": \"busy\"}}\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// parse_request_for_op: the path names the op, the body's tag is optional.
// ---------------------------------------------------------------------------

TEST(ServeRequests, OpFieldIsOptionalAndMustMatch) {
  const api::Request tagless = api::parse_request_for_op("analyze", "{}");
  EXPECT_STREQ(api::op_name(tagless), "analyze");
  const api::Request tagged =
      api::parse_request_for_op("analyze", "{\"op\": \"analyze\"}");
  EXPECT_EQ(api::to_json(tagless), api::to_json(tagged));
  EXPECT_THROW((void)api::parse_request_for_op("analyze", "{\"op\": \"mc\"}"),
               UsageError);
  EXPECT_THROW((void)api::parse_request_for_op("frobnicate", "{}"),
               UsageError);
  // Everything else keeps parse_request semantics: unknown fields throw.
  EXPECT_THROW((void)api::parse_request_for_op("analyze", "{\"x\": 1}"),
               UsageError);
}

// ---------------------------------------------------------------------------
// util/json under server-shaped hostile input.  The daemon feeds request
// bodies straight into the shared parser, so its failure modes on
// oversized, truncated, NUL-ridden, and deeply nested payloads are part of
// the serve contract — pinned here with their offset-carrying messages.
// ---------------------------------------------------------------------------

std::string parse_error_of(const std::string& body) {
  try {
    (void)JsonValue::parse(body);
  } catch (const UsageError& e) {
    return e.what();
  }
  return {};
}

TEST(ServeJson, TruncatedBodiesFailWithOffsets) {
  EXPECT_EQ(parse_error_of("{\"app\": {\"name\": \"lulesh\""),
            "json: unexpected end of input (at byte 25)");
  EXPECT_EQ(parse_error_of("{\"app\": "),
            "json: unexpected end of input (at byte 8)");
  EXPECT_EQ(parse_error_of("{\"app\": \"lul"),
            "json: unterminated string (at byte 12)");
}

TEST(ServeJson, NulAndControlBytesAreRejected) {
  const std::string nul_in_string{"{\"a\": \"x\0y\"}", 12};
  EXPECT_EQ(parse_error_of(nul_in_string),
            "json: raw control character in string (at byte 9)");
  const std::string nul_after_doc{"{}\0", 3};
  EXPECT_EQ(parse_error_of(nul_after_doc),
            "json: trailing characters after document (at byte 2)");
}

TEST(ServeJson, DeeplyNestedArraysHitTheDepthCap) {
  // 64 levels parse; 66 trip the recursion bound (never the real stack).
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_EQ(parse_error_of(nested(64)), "");
  EXPECT_EQ(parse_error_of(nested(66)),
            "json: nesting too deep (at byte 65)");
}

TEST(ServeJson, OversizedPayloadStillParsesDeterministically) {
  // A wide (not deep) multi-hundred-KB document must parse fine — size
  // limits belong to the HTTP layer (413), not the JSON parser.
  std::string body = "[";
  for (int i = 0; i < 50'000; ++i) {
    body += std::to_string(i);
    body += ", ";
  }
  body += "-1]";
  const JsonValue doc = JsonValue::parse(body);
  EXPECT_EQ(doc.as_array("doc").size(), 50'001u);
}

// ---------------------------------------------------------------------------
// Server integration: a live daemon on an ephemeral loopback port.
// ---------------------------------------------------------------------------

const char* kAnalyzeBody =
    "{\"app\": {\"name\": \"lulesh\", \"ranks\": 8, \"scale\": 0.05}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}}";
const char* kMcBody =
    "{\"app\": {\"name\": \"lulesh\", \"ranks\": 8, \"scale\": 0.05}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}, \"samples\": 16, "
    "\"seed\": 7}";

/// An engine + started server bound to an ephemeral port.
struct TestDaemon {
  explicit TestDaemon(int threads = 1, int max_inflight = 64) : engine(
      api::Engine::Options{.threads = threads}) {
    Server::Options opts;
    opts.port = 0;
    opts.max_inflight = max_inflight;
    server.emplace(opts, serve::engine_routes(engine));
    server->start();
  }
  ~TestDaemon() {
    server->request_shutdown();
    server->join();
  }
  Client client() { return Client("127.0.0.1", server->port()); }

  api::Engine engine;
  std::optional<Server> server;
};

TEST(ServeDaemon, HealthzReusesVersionLineFieldsVerbatim) {
  TestDaemon daemon;
  Client c = daemon.client();
  const Client::Result r = c.get("/healthz");
  EXPECT_EQ(r.status, 200);
  const JsonValue doc = JsonValue::parse(r.body);
  const BuildInfo& b = build_info();
  EXPECT_EQ(doc.find("status")->as_string("status"), "ok");
  // The verbatim-reuse pin: /healthz carries exactly the fields `llamp
  // --version` prints, not a reformatted copy.
  EXPECT_EQ(doc.find("version")->as_string("version"), b.version);
  EXPECT_EQ(doc.find("compiler")->as_string("compiler"), b.compiler);
  EXPECT_EQ(doc.find("build_type")->as_string("build_type"), b.build_type);
  ASSERT_NE(doc.find("uptime_ns"), nullptr);
  ASSERT_NE(doc.find("graph_cache"), nullptr);
  ASSERT_NE(doc.find("solver_cache"), nullptr);
}

TEST(ServeDaemon, MetricsServesEngineSnapshotWithSequence) {
  TestDaemon daemon;
  Client c = daemon.client();
  const Client::Result a = c.get("/metrics");
  const Client::Result b = c.get("/metrics");
  EXPECT_EQ(a.status, 200);
  const JsonValue da = JsonValue::parse(a.body);
  const JsonValue db = JsonValue::parse(b.body);
  const auto seq = [](const JsonValue& d) {
    return d.find("counters")->find("engine.metrics_seq")->as_unsigned("seq");
  };
  // The scrape counter is strictly monotonic across snapshots.
  EXPECT_GT(seq(db), seq(da));
  ASSERT_NE(da.find("gauges")->find("engine.uptime_ns"), nullptr);
}

TEST(ServeDaemon, AnalyzeResponseMatchesBatchSurfaceBytes) {
  TestDaemon daemon;
  Client c = daemon.client();
  const Client::Result r = c.post("/v1/analyze", kAnalyzeBody);
  EXPECT_EQ(r.status, 200);
  ASSERT_NE(r.header("content-type"), nullptr);
  EXPECT_EQ(*r.header("content-type"), "application/json");
  // The wire payload is the batch surface's result line, byte-for-byte.
  api::Engine reference(api::Engine::Options{.threads = 1});
  const std::string expected =
      api::to_json_line(
          reference.run(api::parse_request_for_op("analyze", kAnalyzeBody))) +
      '\n';
  EXPECT_EQ(r.body, expected);
}

TEST(ServeDaemon, WireDeterminismAcrossInterleavingAndThreads) {
  // The tentpole pin: one response per (route, body) pair, collected under
  // maximally different conditions, all byte-identical.
  std::vector<std::string> analyze_bodies;
  std::vector<std::string> mc_bodies;

  {
    TestDaemon daemon(/*threads=*/1);
    Client c = daemon.client();
    // Cold cache, keep-alive reuse, alternating ops on one connection.
    analyze_bodies.push_back(c.post("/v1/analyze", kAnalyzeBody).body);
    mc_bodies.push_back(c.post("/v1/mc", kMcBody).body);
    analyze_bodies.push_back(c.post("/v1/analyze", kAnalyzeBody).body);
    mc_bodies.push_back(c.post("/v1/mc", kMcBody).body);
    // Fresh connection against the now-warm cache.
    Client c2 = daemon.client();
    analyze_bodies.push_back(c2.post("/v1/analyze", kAnalyzeBody).body);
  }
  {
    // Different engine pool size; concurrent clients racing dispatch.
    TestDaemon daemon(/*threads=*/4);
    std::vector<std::thread> workers;
    std::vector<std::string> analyze_out(3);
    std::vector<std::string> mc_out(3);
    for (int i = 0; i < 3; ++i) {
      workers.emplace_back([&daemon, &analyze_out, &mc_out, i] {
        Client c = daemon.client();
        analyze_out[static_cast<std::size_t>(i)] =
            c.post("/v1/analyze", kAnalyzeBody).body;
        mc_out[static_cast<std::size_t>(i)] = c.post("/v1/mc", kMcBody).body;
      });
    }
    for (std::thread& t : workers) t.join();
    analyze_bodies.insert(analyze_bodies.end(), analyze_out.begin(),
                          analyze_out.end());
    mc_bodies.insert(mc_bodies.end(), mc_out.begin(), mc_out.end());
  }

  ASSERT_FALSE(analyze_bodies.front().empty());
  for (const std::string& b : analyze_bodies) {
    EXPECT_EQ(b, analyze_bodies.front());
  }
  ASSERT_FALSE(mc_bodies.front().empty());
  for (const std::string& b : mc_bodies) EXPECT_EQ(b, mc_bodies.front());
  EXPECT_NE(analyze_bodies.front(), mc_bodies.front());
}

TEST(ServeDaemon, ErrorClassesMapToStatusesAndDaemonSurvives) {
  TestDaemon daemon;
  {
    Client c = daemon.client();
    const Client::Result r = c.get("/no/such/path");
    EXPECT_EQ(r.status, 404);
    EXPECT_NE(r.body.find("\"kind\": \"http\""), std::string::npos);
  }
  {
    Client c = daemon.client();
    const Client::Result r = c.get("/v1/analyze");
    EXPECT_EQ(r.status, 405);
    ASSERT_NE(r.header("allow"), nullptr);
    EXPECT_EQ(*r.header("allow"), "POST");
  }
  {
    Client c = daemon.client();
    const Client::Result r = c.post("/v1/analyze", "{not json");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("\"kind\": \"usage\""), std::string::npos);
  }
  {
    Client c = daemon.client();
    const Client::Result r = c.post(
        "/v1/analyze", "{\"app\": {\"name\": \"no-such-app\"}}");
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("\"kind\": \"analysis\""), std::string::npos);
  }
  {
    // Garbage on the wire: 400, connection closed, daemon alive.
    Client c = daemon.client();
    c.send_raw("EHLO mail.example.com\r\n\r\n");
    const std::string raw = c.read_until_close();
    EXPECT_NE(raw.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  }
  {
    // Oversized declared body: 413 from the headers alone, then close.
    Client c = daemon.client();
    c.send_raw(
        "POST /v1/analyze HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    const std::string raw = c.read_until_close();
    EXPECT_NE(raw.find("HTTP/1.1 413 Content Too Large"), std::string::npos);
  }
  {
    // Mid-request disconnect: partial request, peer vanishes, no response
    // owed.  The next connection must work (the daemon never crashed).
    Client c = daemon.client();
    c.send_raw("POST /v1/analyze HTTP/1.1\r\nContent-Length: 100\r\n\r\n{");
  }
  Client c = daemon.client();
  EXPECT_EQ(c.get("/healthz").status, 200);
  const Server::Stats st = daemon.server->stats();
  EXPECT_GE(st.protocol_errors, 4u);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(ServeDaemon, KeepAliveCountsOneConnection) {
  TestDaemon daemon;
  Client c = daemon.client();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(c.get("/healthz").status, 200);
  const Client::Result closing =
      c.request("GET", "/healthz", "", {"Connection: close"});
  EXPECT_EQ(closing.status, 200);
  ASSERT_NE(closing.header("connection"), nullptr);
  EXPECT_EQ(*closing.header("connection"), "close");
  const Server::Stats st = daemon.server->stats();
  EXPECT_EQ(st.connections, 1u);
  EXPECT_EQ(st.requests, 6u);
  EXPECT_EQ(st.responses, 6u);
}

// A server with one custom blocking route, for admission/drain tests where
// the test must control exactly when a request completes.
struct GatedDaemon {
  explicit GatedDaemon(int max_inflight) {
    Server::Options opts;
    opts.port = 0;
    opts.max_inflight = max_inflight;
    Server::Route r;
    r.method = "POST";
    r.path = "/gated";
    r.dispatch = Server::Dispatch::kQueued;
    r.handler = [this](const HttpRequest&) {
      entered.store(true);
      gate_future.wait();
      HttpResponse res;
      res.body = "done\n";
      return res;
    };
    server.emplace(opts, std::vector<Server::Route>{std::move(r)});
    server->start();
  }
  void wait_entered() {
    while (!entered.load()) std::this_thread::yield();
  }

  std::promise<void> gate;
  std::shared_future<void> gate_future{gate.get_future().share()};
  std::atomic<bool> entered{false};
  std::optional<Server> server;
};

TEST(ServeDaemon, AdmissionControlRejectsWith503) {
  GatedDaemon daemon(/*max_inflight=*/1);
  Client first("127.0.0.1", daemon.server->port());
  std::thread blocked([&first] {
    const Client::Result r = first.post("/gated", "x");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "done\n");
  });
  daemon.wait_entered();  // the slot is now provably occupied

  Client second("127.0.0.1", daemon.server->port());
  const Client::Result rejected = second.post("/gated", "x");
  EXPECT_EQ(rejected.status, 503);
  ASSERT_NE(rejected.header("retry-after"), nullptr);
  EXPECT_EQ(*rejected.header("retry-after"), "1");
  EXPECT_NE(rejected.body.find("\"kind\": \"http\""), std::string::npos);

  daemon.gate.set_value();
  blocked.join();
  // The rejected connection stayed usable: the retry succeeds on it.
  const Client::Result retry = second.post("/gated", "x");
  EXPECT_EQ(retry.status, 200);
  EXPECT_EQ(daemon.server->stats().rejected, 1u);

  daemon.server->request_shutdown();
  daemon.server->join();
}

TEST(ServeDaemon, GracefulDrainFinishesInFlightRequests) {
  GatedDaemon daemon(/*max_inflight=*/4);
  Client c("127.0.0.1", daemon.server->port());
  std::thread inflight([&c] {
    const Client::Result r = c.post("/gated", "x");
    // The drain contract: a dispatched request is answered, not dropped.
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "done\n");
  });
  daemon.wait_entered();

  daemon.server->request_shutdown();
  daemon.server->request_shutdown();  // idempotent
  // New connections are refused once the drain closes the listen socket
  // (poll with a deadline: the IO thread races this assertion), but the
  // in-flight response still arrives.
  bool refused = false;
  for (int i = 0; i < 500 && !refused; ++i) {
    try {
      Client probe("127.0.0.1", daemon.server->port());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } catch (const Error&) {
      refused = true;
    }
  }
  EXPECT_TRUE(refused);
  daemon.gate.set_value();
  daemon.server->join();
  inflight.join();
  EXPECT_EQ(daemon.server->stats().responses, 1u);
}

}  // namespace
}  // namespace llamp
