#include <gtest/gtest.h>

#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace llamp::topo {
namespace {

TEST(FatTreeShape, NodeCountAndName) {
  EXPECT_EQ(FatTree(4).nnodes(), 16);
  EXPECT_EQ(FatTree(16).nnodes(), 1024);  // the paper's k = 16 three-tier
  EXPECT_THROW(FatTree(3), TopoError);
  EXPECT_THROW(FatTree(0), TopoError);
  EXPECT_NE(FatTree(4).name().find("fat-tree"), std::string::npos);
}

TEST(FatTreeRoutes, HopTiers) {
  const FatTree ft(4);  // 2 hosts/edge switch, 4 hosts/pod
  // Same edge switch: 1 switch, 2 wires.
  Path p = ft.path(0, 1);
  EXPECT_EQ(p.switches, 1);
  EXPECT_EQ(p.total_wires(), 2);
  // Same pod, different edge: 3 switches, 4 wires.
  p = ft.path(0, 2);
  EXPECT_EQ(p.switches, 3);
  EXPECT_EQ(p.total_wires(), 4);
  // Cross pod: 5 switches, 6 wires.
  p = ft.path(0, 4);
  EXPECT_EQ(p.switches, 5);
  EXPECT_EQ(p.total_wires(), 6);
  EXPECT_THROW((void)ft.path(0, 0), TopoError);
  EXPECT_THROW((void)ft.path(0, 99), TopoError);
}

TEST(FatTreeRoutes, Symmetric) {
  const FatTree ft(8);
  for (const auto& [a, b] : {std::pair{0, 3}, {0, 17}, {5, 100}}) {
    const Path ab = ft.path(a, b);
    const Path ba = ft.path(b, a);
    EXPECT_EQ(ab.switches, ba.switches);
    EXPECT_EQ(ab.total_wires(), ba.total_wires());
  }
}

TEST(DragonflyShape, NodeCountAndValidation) {
  // The paper's configuration: g = 8, a = 4, p = 8 -> 256 nodes.
  EXPECT_EQ(Dragonfly(8, 4, 8).nnodes(), 256);
  EXPECT_THROW(Dragonfly(1, 4, 8), TopoError);
  EXPECT_THROW(Dragonfly(8, 0, 8), TopoError);
}

TEST(DragonflyRoutes, Tiers) {
  const Dragonfly df(8, 4, 8);
  // Same switch.
  Path p = df.path(0, 1);
  EXPECT_EQ(p.switches, 1);
  EXPECT_EQ(p.tc_wires, 2);
  EXPECT_EQ(p.intra_wires + p.inter_wires, 0);
  // Same group, different switch: one intra wire.
  p = df.path(0, 8);
  EXPECT_EQ(p.switches, 2);
  EXPECT_EQ(p.intra_wires, 1);
  EXPECT_EQ(p.inter_wires, 0);
  // Cross group: exactly one global wire, 2..4 switches.
  p = df.path(0, 32 * 3);
  EXPECT_EQ(p.inter_wires, 1);
  EXPECT_GE(p.switches, 2);
  EXPECT_LE(p.switches, 4);
}

TEST(DragonflyRoutes, GatewayConsistency) {
  const Dragonfly df(8, 4, 8);
  for (int g1 = 0; g1 < 8; ++g1) {
    for (int g2 = 0; g2 < 8; ++g2) {
      if (g1 == g2) continue;
      const int gw = df.gateway_switch(g1, g2);
      EXPECT_GE(gw, 0);
      EXPECT_LT(gw, 4);
    }
  }
  EXPECT_THROW((void)df.gateway_switch(1, 1), TopoError);
}

TEST(DragonflyRoutes, CrossGroupSwitchCountMatchesGateways) {
  const Dragonfly df(4, 2, 2);
  for (int a = 0; a < df.nnodes(); ++a) {
    for (int b = 0; b < df.nnodes(); ++b) {
      if (a == b) continue;
      const Path p = df.path(a, b);
      const int wires_expected = p.tc_wires + p.intra_wires + p.inter_wires;
      EXPECT_EQ(p.total_wires(), wires_expected);
      // Wires = switches + 1 on any simple route host..host.
      EXPECT_EQ(p.total_wires(), p.switches + 1);
    }
  }
}

TEST(WireSpace, FatTreeRouteCosts) {
  const FatTree ft(4);
  loggops::Params params;
  params.o = 0.0;
  const auto placement = identity_placement(8);
  const auto space =
      make_wire_latency_space(params, ft, placement, 274.0, 108.0);
  EXPECT_EQ(space.num_params(), 1);
  EXPECT_EQ(space.param_name(0), "l_wire");
  EXPECT_DOUBLE_EQ(space.base_value(0), 274.0);

  graph::Graph g(8);
  const auto s = g.add_send(0, 4, 1);  // cross pod: 5 switches, 6 wires
  const auto r = g.add_recv(4, 0, 1);
  g.add_comm_edge(s, r, false);
  g.finalize();
  const lp::Affine a = space.edge_cost(g, g.edges()[0]);
  EXPECT_DOUBLE_EQ(a.constant, 5 * 108.0);
  ASSERT_EQ(a.terms.size(), 1u);
  EXPECT_DOUBLE_EQ(a.terms[0].coeff, 6.0);
}

TEST(WireSpace, PlacementValidation) {
  const FatTree ft(4);
  loggops::Params params;
  EXPECT_THROW(make_wire_latency_space(params, ft, {}, 1.0, 1.0), TopoError);
  EXPECT_THROW(make_wire_latency_space(params, ft, {0, 0}, 1.0, 1.0),
               TopoError);
  EXPECT_THROW(make_wire_latency_space(params, ft, {0, 99}, 1.0, 1.0),
               TopoError);
}

TEST(DragonflyClassSpace, ThreeClasses) {
  const Dragonfly df(4, 2, 2);
  loggops::Params params;
  params.o = 0.0;
  const auto placement = identity_placement(df.nnodes());
  const auto space = make_dragonfly_class_space(params, df, placement, 100.0,
                                                200.0, 300.0, 50.0);
  EXPECT_EQ(space.num_params(), 3);
  EXPECT_EQ(space.param_name(2), "l_inter");

  // Cross-group pair: 2 tc wires + 1 inter wire (+ maybe intra).
  graph::Graph g(df.nnodes());
  const auto s = g.add_send(0, 4, 1);
  const auto r = g.add_recv(4, 0, 1);
  g.add_comm_edge(s, r, false);
  g.finalize();
  const lp::Affine a = space.edge_cost(g, g.edges()[0]);
  double tc = 0, inter = 0;
  for (const auto& term : a.terms) {
    if (term.param == 0) tc = term.coeff;
    if (term.param == 2) inter = term.coeff;
  }
  EXPECT_DOUBLE_EQ(tc, 2.0);
  EXPECT_DOUBLE_EQ(inter, 1.0);
}

TEST(PairwiseMatrices, MatchRouteFormula) {
  const FatTree ft(4);
  loggops::Params params;
  const auto mats =
      make_pairwise_matrices(params, ft, identity_placement(6), 274.0, 108.0);
  // Pair (0, 4) is cross-pod: 6 wires + 5 switches.
  EXPECT_DOUBLE_EQ(mats.latency[0 * 6 + 4], 6 * 274.0 + 5 * 108.0);
  EXPECT_DOUBLE_EQ(mats.latency[4 * 6 + 0], mats.latency[0 * 6 + 4]);
  EXPECT_DOUBLE_EQ(mats.latency[2 * 6 + 2], 0.0);
  EXPECT_DOUBLE_EQ(mats.gap[0 * 6 + 4], params.G);
}

}  // namespace
}  // namespace llamp::topo
