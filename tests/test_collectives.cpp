#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <tuple>
#include <vector>

#include "schedgen/schedgen.hpp"
#include "trace/builder.hpp"

namespace llamp::schedgen {
namespace {

/// First and last vertex of each rank (the zero-cost sentinels Schedgen
/// inserts around every rank's chain).
struct RankAnchors {
  std::vector<graph::VertexId> start, end;
};

RankAnchors anchors(const graph::Graph& g) {
  RankAnchors a;
  a.start.assign(static_cast<std::size_t>(g.nranks()), graph::kInvalidVertex);
  a.end.assign(static_cast<std::size_t>(g.nranks()), graph::kInvalidVertex);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto r = static_cast<std::size_t>(g.vertex(v).rank);
    if (a.start[r] == graph::kInvalidVertex) a.start[r] = v;
    a.end[r] = v;
  }
  return a;
}

/// BFS reachability from `from` over the dependency edges.
std::vector<bool> reachable(const graph::Graph& g, graph::VertexId from) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<graph::VertexId> q{from};
  seen[from] = true;
  while (!q.empty()) {
    const auto v = q.front();
    q.pop_front();
    for (const auto& adj : g.out_edges(v)) {
      if (!seen[adj.other]) {
        seen[adj.other] = true;
        q.push_back(adj.other);
      }
    }
  }
  return seen;
}

/// Data-flow verdict for one collective instance: does rank i's start
/// causally influence rank j's end?
std::vector<std::vector<bool>> influence(const graph::Graph& g) {
  const RankAnchors a = anchors(g);
  std::vector<std::vector<bool>> m(static_cast<std::size_t>(g.nranks()));
  for (int i = 0; i < g.nranks(); ++i) {
    const auto seen = reachable(g, a.start[static_cast<std::size_t>(i)]);
    auto& row = m[static_cast<std::size_t>(i)];
    row.resize(static_cast<std::size_t>(g.nranks()));
    for (int j = 0; j < g.nranks(); ++j) {
      row[static_cast<std::size_t>(j)] =
          seen[a.end[static_cast<std::size_t>(j)]];
    }
  }
  return m;
}

graph::Graph collective_graph(trace::Op op, int nranks, int root,
                              const Options& opts) {
  trace::TraceBuilder tb(nranks);
  for (int r = 0; r < nranks; ++r) {
    tb.collective(r, op, 4096, root);
  }
  return build_graph(tb.finish(), opts);
}

// ---------------------------------------------------------------------------
// All-to-all-influence collectives: every rank's contribution must reach
// every rank's output, for every algorithm and rank count.
// ---------------------------------------------------------------------------

struct AllToAllCase {
  std::string label;
  trace::Op op;
  Options opts;
};

class AllInfluenceTest
    : public ::testing::TestWithParam<std::tuple<AllToAllCase, int>> {};

TEST_P(AllInfluenceTest, EveryRankInfluencesEveryRank) {
  const auto& [c, nranks] = GetParam();
  const auto g = collective_graph(c.op, nranks, 0, c.opts);
  const auto m = influence(g);
  for (int i = 0; i < nranks; ++i) {
    for (int j = 0; j < nranks; ++j) {
      EXPECT_TRUE(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
          << c.label << " nranks=" << nranks << ": rank " << i
          << " does not influence rank " << j;
    }
  }
}

std::vector<AllToAllCase> all_to_all_cases() {
  std::vector<AllToAllCase> cases;
  Options o;
  o.allreduce = AllreduceAlgo::kRecursiveDoubling;
  cases.push_back({"allreduce_rd", trace::Op::kAllreduce, o});
  o.allreduce = AllreduceAlgo::kRing;
  cases.push_back({"allreduce_ring", trace::Op::kAllreduce, o});
  o.allreduce = AllreduceAlgo::kReduceBcast;
  cases.push_back({"allreduce_redbcast", trace::Op::kAllreduce, o});
  Options b;
  b.barrier = BarrierAlgo::kDissemination;
  cases.push_back({"barrier_dissemination", trace::Op::kBarrier, b});
  b.barrier = BarrierAlgo::kReduceBcast;
  cases.push_back({"barrier_redbcast", trace::Op::kBarrier, b});
  Options ag;
  ag.allgather = AllgatherAlgo::kRing;
  cases.push_back({"allgather_ring", trace::Op::kAllgather, ag});
  ag.allgather = AllgatherAlgo::kRecursiveDoubling;
  cases.push_back({"allgather_rd", trace::Op::kAllgather, ag});
  Options at;
  at.alltoall = AlltoallAlgo::kLinear;
  cases.push_back({"alltoall_linear", trace::Op::kAlltoall, at});
  at.alltoall = AlltoallAlgo::kPairwise;
  cases.push_back({"alltoall_pairwise", trace::Op::kAlltoall, at});
  at.alltoall = AlltoallAlgo::kBruck;
  cases.push_back({"alltoall_bruck", trace::Op::kAlltoall, at});
  Options rs;
  cases.push_back({"reduce_scatter_ring", trace::Op::kReduceScatter, rs});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSizes, AllInfluenceTest,
    ::testing::Combine(::testing::ValuesIn(all_to_all_cases()),
                       ::testing::Values(2, 3, 4, 5, 8, 16)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Rooted collectives.
// ---------------------------------------------------------------------------

class RootedTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (P, root)

TEST_P(RootedTest, BcastRootReachesAll) {
  const auto [nranks, root] = GetParam();
  for (const BcastAlgo algo : {BcastAlgo::kBinomialTree, BcastAlgo::kLinear,
                               BcastAlgo::kScatterAllgather}) {
    Options o;
    o.bcast = algo;
    const auto g = collective_graph(trace::Op::kBcast, nranks, root, o);
    const auto m = influence(g);
    for (int j = 0; j < nranks; ++j) {
      EXPECT_TRUE(m[static_cast<std::size_t>(root)][static_cast<std::size_t>(j)])
          << "bcast root " << root << " -> " << j;
    }
  }
}

TEST_P(RootedTest, ReduceAllReachRoot) {
  const auto [nranks, root] = GetParam();
  for (const ReduceAlgo algo :
       {ReduceAlgo::kBinomialTree, ReduceAlgo::kLinear}) {
    Options o;
    o.reduce = algo;
    const auto g = collective_graph(trace::Op::kReduce, nranks, root, o);
    const auto m = influence(g);
    for (int i = 0; i < nranks; ++i) {
      EXPECT_TRUE(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(root)])
          << "reduce " << i << " -> root " << root;
    }
  }
}

TEST_P(RootedTest, GatherAllReachRoot) {
  const auto [nranks, root] = GetParam();
  const auto g = collective_graph(trace::Op::kGather, nranks, root, Options{});
  const auto m = influence(g);
  for (int i = 0; i < nranks; ++i) {
    EXPECT_TRUE(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(root)]);
  }
}

TEST_P(RootedTest, ScatterRootReachesAll) {
  const auto [nranks, root] = GetParam();
  const auto g =
      collective_graph(trace::Op::kScatter, nranks, root, Options{});
  const auto m = influence(g);
  for (int j = 0; j < nranks; ++j) {
    EXPECT_TRUE(m[static_cast<std::size_t>(root)][static_cast<std::size_t>(j)]);
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndRoots, RootedTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                                            ::testing::Values(0, 1)),
                         [](const auto& info) {
                           return "P" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_root" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Structural expectations.
// ---------------------------------------------------------------------------

TEST(RingAllreduce, HasLongerDependentChainsThanRecursiveDoubling) {
  // The ring's 2(P-1) dependent steps vs recursive doubling's log2 P rounds
  // (the structural root of Fig. 10's sensitivity gap).
  const int P = 8;
  Options rd;
  rd.allreduce = AllreduceAlgo::kRecursiveDoubling;
  Options ring;
  ring.allreduce = AllreduceAlgo::kRing;
  const auto g_rd = collective_graph(trace::Op::kAllreduce, P, 0, rd);
  const auto g_ring = collective_graph(trace::Op::kAllreduce, P, 0, ring);
  // Messages per rank: rd = log2(8) = 3 exchanges (6 p2p ops), ring = 14.
  EXPECT_GT(g_ring.num_comm_edges(), g_rd.num_comm_edges());
}

TEST(SingleRank, CollectivesDegenerateToNoOps) {
  trace::TraceBuilder tb(1);
  tb.collective(0, trace::Op::kAllreduce, 64);
  tb.collective(0, trace::Op::kBarrier, 0);
  const auto g = build_graph(tb.finish());
  EXPECT_EQ(g.num_comm_edges(), 0u);
}

}  // namespace
}  // namespace llamp::schedgen
