#include <gtest/gtest.h>

#include <memory>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "graph/graph_io.hpp"
#include "injector/cluster_emulator.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"
#include "trace/trace_io.hpp"
#include "util/stats.hpp"

namespace llamp {
namespace {

loggops::Params testbed() {
  return loggops::NetworkConfig::cscs_testbed(5'000.0);
}

TEST(FullPipeline, SerializationIsTransparent) {
  // app -> trace -> text -> trace -> graph -> GOAL -> graph: every stage
  // must preserve the analysis result bit-for-bit.
  const auto t = apps::make_app_trace("cloverleaf", 8, 0.1);
  const auto t2 = trace::from_text(trace::to_text(t));
  ASSERT_EQ(t, t2);
  const auto g = schedgen::build_graph(t2);
  const auto g2 = graph::goal_from_text(graph::to_goal(g));
  const double t_direct = sim::Simulator(g).run(testbed()).makespan;
  const double t_reloaded = sim::Simulator(g2).run(testbed()).makespan;
  EXPECT_DOUBLE_EQ(t_direct, t_reloaded);
}

TEST(FullPipeline, ValidationRrmseUnderTwoPercent) {
  // The paper's Fig. 9 headline: predictions within 2% RRMSE of measured
  // runs, here against the cluster emulator with its default noise.
  for (const char* app : {"lulesh", "milc", "icon"}) {
    const int ranks = apps::supported_ranks(app, 16);
    const auto g =
        schedgen::build_graph(apps::make_app_trace(app, ranks, 0.15));
    core::LatencyAnalyzer analyzer(g, testbed());
    injector::ClusterEmulator emulator(g, testbed());

    std::vector<double> measured, predicted;
    for (double d = 0.0; d <= us(100.0); d += us(20.0)) {
      measured.push_back(emulator.measure(d, 5));
      predicted.push_back(analyzer.predict_runtime(d));
    }
    EXPECT_LT(rrmse_percent(measured, predicted), 2.0) << app;
  }
}

TEST(FullPipeline, CollectiveSwapChangesSensitivity) {
  // Fig. 10: ring allreduce makes ICON markedly more latency sensitive
  // than recursive doubling.
  const auto t = apps::make_app_trace("icon", 16, 0.2);
  schedgen::Options rd;
  rd.allreduce = schedgen::AllreduceAlgo::kRecursiveDoubling;
  schedgen::Options ring;
  ring.allreduce = schedgen::AllreduceAlgo::kRing;
  const auto g_rd = schedgen::build_graph(t, rd);
  const auto g_ring = schedgen::build_graph(t, ring);
  core::LatencyAnalyzer an_rd(g_rd, testbed());
  core::LatencyAnalyzer an_ring(g_ring, testbed());
  EXPECT_GT(an_ring.lambda_L(us(50.0)), an_rd.lambda_L(us(50.0)));
  EXPECT_LT(an_ring.tolerance_delta(5.0), an_rd.tolerance_delta(5.0));
}

TEST(FullPipeline, SimulatorAgreesWithAnalyzerOnApps) {
  for (const char* app : {"hpcg", "npb-mg", "lammps"}) {
    const auto g = schedgen::build_graph(apps::make_app_trace(app, 8, 0.1));
    core::LatencyAnalyzer analyzer(g, testbed());
    sim::Simulator sim(g);
    for (const double d : {0.0, us(10.0), us(50.0)}) {
      loggops::Params p = testbed();
      p.L += d;
      EXPECT_NEAR(sim.run(p).makespan, analyzer.predict_runtime(d),
                  1e-6 * analyzer.predict_runtime(d))
          << app << " delta=" << d;
    }
  }
}

TEST(FullPipeline, ToleranceBandsOrderLikeFig1) {
  // MILC < LULESH < ICON in every tolerance band.
  const auto g_milc =
      schedgen::build_graph(apps::make_app_trace("milc", 16, 0.15));
  const auto g_lulesh =
      schedgen::build_graph(apps::make_app_trace("lulesh", 27, 0.2));
  const auto g_icon =
      schedgen::build_graph(apps::make_app_trace("icon", 16, 0.3));
  core::LatencyAnalyzer milc(g_milc, testbed());
  core::LatencyAnalyzer lulesh(g_lulesh, testbed());
  core::LatencyAnalyzer icon(g_icon, testbed());
  for (const double pct : {1.0, 2.0, 5.0}) {
    EXPECT_LT(milc.tolerance_delta(pct), lulesh.tolerance_delta(pct)) << pct;
    EXPECT_LT(lulesh.tolerance_delta(pct), icon.tolerance_delta(pct)) << pct;
  }
}

TEST(FullPipeline, RandomProgramsSurviveEveryStage) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    testing::RandomProgramConfig cfg;
    cfg.seed = seed;
    cfg.nranks = 6;
    cfg.steps = 150;
    const auto t = testing::random_trace(cfg);
    const auto text = trace::to_text(t);
    const auto g = schedgen::build_graph(trace::from_text(text));
    const auto space = std::make_shared<lp::LatencyParamSpace>(testbed());
    lp::ParametricSolver solver(g, space);
    const auto sol = solver.solve(0, testbed().L);
    EXPECT_GT(sol.value, 0.0);
    EXPECT_GE(sol.gradient[0], 0.0);
  }
}

}  // namespace
}  // namespace llamp
